package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/wal"
)

// TestCheckpointPruneCrashWindowRegression pins the crash window between
// WriteCheckpoint and the retention prune: a pass that crashes after
// publishing its checkpoint but before pruning leaves covered segments
// (and a surplus checkpoint) orphaned on disk. Before the fix,
// CheckpointNow returned early on a pass with nothing newly sealed, so
// the orphans persisted until new work happened to seal another segment
// — a retention leak on an idle fleet. The next pass must now run
// retention even when it writes nothing, and recovery over the repaired
// state must stay exact.
func TestCheckpointPruneCrashWindowRegression(t *testing.T) {
	dir := t.TempDir()
	slog, err := wal.OpenSegmentedLog(dir, wal.SegmentMaxRecords(4))
	if err != nil {
		t.Fatal(err)
	}
	ck := NewCheckpointer(slog, CheckpointEveryRecords(4))
	e, _ := newRecoveryEngine(t)
	run := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			inst, err := e.CreateInstance("Rec", nil, slog)
			if err != nil {
				t.Fatal(err)
			}
			if err := inst.Start(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Phase A: a normal pass establishes checkpoint 1.
	run(2)
	if err := ck.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	cp1, err := wal.LoadCheckpoint(dir)
	if err != nil || cp1 == nil {
		t.Fatalf("phase A checkpoint: %v, %v", cp1, err)
	}

	// Phase B: more work, then a pass that "crashes" after publishing its
	// checkpoint and before pruning — replayed here by hand.
	run(2)
	if err := slog.Rotate(); err != nil {
		t.Fatal(err)
	}
	var recs []wal.Record
	maxIdx := cp1.Cover
	for _, s := range slog.SealedSegments() {
		if s.Index <= cp1.Cover {
			continue
		}
		rs, err := wal.ReadFile(s.Path)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rs...)
		maxIdx = s.Index
	}
	if maxIdx <= cp1.Cover {
		t.Fatalf("phase B sealed nothing past cover %d", cp1.Cover)
	}
	if _, err := wal.WriteCheckpoint(dir, wal.BuildCheckpoint(cp1, recs, maxIdx)); err != nil {
		t.Fatal(err)
	}
	// Crash: no prune ran. Segments covered by checkpoint 1 are orphans.
	if err := slog.Close(); err != nil {
		t.Fatal(err)
	}
	orphans := 0
	segs, err := wal.ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if s.Index <= cp1.Cover {
			orphans++
		}
	}
	if orphans == 0 {
		t.Fatal("crash window left no orphaned covered segments — scenario not exercised")
	}

	// Restart: reopen the log and run one pass with nothing newly sealed.
	slog2, err := wal.OpenSegmentedLog(dir, wal.SegmentMaxRecords(4))
	if err != nil {
		t.Fatal(err)
	}
	ck2 := NewCheckpointer(slog2, CheckpointEveryRecords(4))
	if err := ck2.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	segs, err = wal.ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if s.Index <= cp1.Cover {
			t.Fatalf("orphaned segment %d survived the no-op pass (cover %d)", s.Index, cp1.Cover)
		}
	}
	cps, err := wal.ListCheckpoints(dir)
	if err != nil || len(cps) > 2 {
		t.Fatalf("checkpoints after no-op pass: %v err=%v", cps, err)
	}
	if err := slog2.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery over the repaired layout is exact: all four instances
	// finish with the baseline trail (or sit in Done).
	cp, err := wal.LoadCheckpoint(dir)
	if err != nil || cp == nil {
		t.Fatalf("load after repair: %v, %v", cp, err)
	}
	tail, _, err := wal.RepairSegments(dir, cp.Cover)
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := newRecoveryEngine(t)
	insts, err := RecoverAllFromCheckpoint(e2, cp, tail, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts)+len(cp.Done) != 4 {
		t.Fatalf("recovered %d + done %d != 4", len(insts), len(cp.Done))
	}
	want := fmt.Sprint(baselineTrail(t))
	for _, inst := range insts {
		if !inst.Finished() {
			t.Fatalf("recovered %s not finished", inst.ID())
		}
		if got := fmt.Sprint(trailStrings(inst)); got != want {
			t.Fatalf("trail diverges:\ngot:  %s\nwant: %s", got, want)
		}
	}
}

func TestFleetArchiveRequiresCheckpointing(t *testing.T) {
	e := newTestEngine(t)
	if err := e.RegisterProcess(chainProcess("Chain")); err != nil {
		t.Fatal(err)
	}
	_, err := NewFleet(e, FleetConfig{
		Shards: 2, Dir: t.TempDir(), ArchiveDir: t.TempDir(),
	})
	if err == nil || !strings.Contains(err.Error(), "CheckpointEveryRecords") {
		t.Fatalf("archive without checkpointing accepted: %v", err)
	}
}

// TestFleetArchiveRoundTrip wires a fleet to a directory archive, runs
// work, then destroys every local checkpoint and recovers through
// RecoverFleetStore: each shard must climb to the archive rung, fetch
// its checkpoint from the store, and reconstruct every instance.
func TestFleetArchiveRoundTrip(t *testing.T) {
	const n = 16
	root, arch := t.TempDir(), t.TempDir()
	e := newTestEngine(t)
	if err := e.RegisterProcess(chainProcess("Chain")); err != nil {
		t.Fatal(err)
	}
	f, err := NewFleet(e, FleetConfig{
		Shards: 2, Dir: root, Parallel: 2, MaxQueue: 4,
		GroupCommit: true, SegmentMaxRecords: 8,
		CheckpointEveryRecords: 8, ArchiveDir: arch,
		ArchiveOpts: func(shard int) []wal.ArchiverOption {
			return []wal.ArchiverOption{
				wal.ArchiveBackoff(time.Millisecond, 4*time.Millisecond),
				wal.ArchiveSeed(int64(shard)),
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run("Chain", n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished != n {
		t.Fatalf("result = %+v", res)
	}
	// Flush the archive before shutdown so the round trip below has every
	// shard's newest checkpoint in the store.
	for _, sh := range f.Shards() {
		if a := sh.Archiver(); a == nil || !a.Drain(5*time.Second) {
			t.Fatalf("shard %d archiver did not drain", sh.ID)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Burn every local checkpoint; the sealed segments stay.
	dirs, err := ShardDirs(root)
	if err != nil || len(dirs) != 2 {
		t.Fatalf("shard dirs: %v err=%v", dirs, err)
	}
	for _, dir := range dirs {
		cps, err := wal.ListCheckpoints(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, ci := range cps {
			if err := os.Remove(ci.Path); err != nil {
				t.Fatal(err)
			}
		}
	}

	e2 := newTestEngine(t)
	if err := e2.RegisterProcess(chainProcess("Chain")); err != nil {
		t.Fatal(err)
	}
	stores := func(shardDir string) wal.Store {
		st, err := wal.NewDirStore(filepath.Join(arch, shardDir))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	insts, rungs, err := RecoverFleetStore(e2, root, stores, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range insts {
		if !inst.Finished() {
			t.Fatalf("recovered %s not finished", inst.ID())
		}
	}
	// Instances that finished inside an archived checkpoint's cover sit in
	// its Done list rather than the recovered slice; together they must
	// account for the whole fleet.
	done := 0
	for _, dir := range dirs {
		rung, ok := rungs[filepath.Base(dir)]
		if !ok {
			t.Fatalf("no rung reported for %s: %v", dir, rungs)
		}
		if rung != wal.SourceArchiveCheckpoint {
			t.Fatalf("shard %s recovered via %q, want %q", dir, rung, wal.SourceArchiveCheckpoint)
		}
		cp, _, err := wal.LoadCheckpointStore(dir, stores(filepath.Base(dir)))
		if err != nil || cp == nil {
			t.Fatalf("shard %s archived checkpoint: %v, %v", dir, cp, err)
		}
		done += len(cp.Done)
	}
	if len(insts)+done != n {
		t.Fatalf("recovered %d + done %d != %d", len(insts), done, n)
	}
}
