package engine

import (
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/wal"
)

func TestSchedulerBoundsConcurrency(t *testing.T) {
	const workers = 3
	s := NewScheduler(workers)
	var active, peak atomic.Int64
	var mu sync.Mutex
	bumpPeak := func(n int64) {
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
	}
	done := make(chan struct{})
	for i := 0; i < 20; i++ {
		s.Submit(func() {
			n := active.Add(1)
			bumpPeak(n)
			<-done
			active.Add(-1)
		})
		if i == workers-1 {
			// The pool is saturated: the next Submit must block until a
			// worker frees, which close(done) triggers below.
			go func() {
				close(done)
			}()
		}
	}
	s.Wait()
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds pool size %d", p, workers)
	}
}

func TestRunFleetAggregates(t *testing.T) {
	reg := obs.NewRegistry()
	e := newTestEngine(t, WithMetrics(reg))
	if err := e.RegisterProcess(chainProcess("Chain")); err != nil {
		t.Fatal(err)
	}
	const n = 16
	res, err := e.RunFleet(FleetOptions{Process: "Chain", N: n, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched != n || res.Finished != n || res.Failed != 0 || res.Err != nil {
		t.Fatalf("result = %+v", res)
	}
	if len(res.Instances) != n {
		t.Fatalf("got %d instances", len(res.Instances))
	}
	for _, inst := range res.Instances {
		if !inst.Finished() {
			t.Fatalf("instance %s not finished", inst.ID())
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["engine.instances.finished"]; got != n {
		t.Fatalf("finished counter = %d, want %d", got, n)
	}
	active := snap.Gauges["engine.fleet.active"]
	if active.Value != 0 || active.Max < 1 || active.Max > 4 {
		t.Fatalf("fleet.active = %+v, want value 0 and 1 <= max <= 4", active)
	}
	if q := snap.Gauges["engine.fleet.queue.depth"]; q.Value != 0 {
		t.Fatalf("fleet.queue.depth = %+v, want drained to 0", q)
	}
}

func TestRunFleetCountsFailures(t *testing.T) {
	e := newTestEngine(t, WithMetrics(obs.NewRegistry()))
	if err := e.RegisterProcess(chainProcess("Boom", "ok", "boom", "ok")); err != nil {
		t.Fatal(err)
	}
	res, err := e.RunFleet(FleetOptions{Process: "Boom", N: 5, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched != 5 || res.Finished != 0 || res.Failed != 5 {
		t.Fatalf("result = %+v", res)
	}
	if res.Err == nil {
		t.Fatal("no error recorded for a failing fleet")
	}
}

func TestRunFleetValidation(t *testing.T) {
	e := newTestEngine(t, WithMetrics(obs.NewRegistry()))
	if err := e.RegisterProcess(chainProcess("Chain")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunFleet(FleetOptions{Process: "nope", N: 1}); err == nil {
		t.Fatal("unknown process accepted")
	}
	if _, err := e.RunFleet(FleetOptions{Process: "Chain", N: 0}); err == nil {
		t.Fatal("fleet size 0 accepted")
	}
}

// TestRunFleetSharedGroupCommitLog runs a fleet over one shared
// group-commit log (the production shape) and then recovers every
// instance from the interleaved file with RecoverAll — the full
// round trip: fleet → shared WAL → crash → demultiplex → replay.
func TestRunFleetSharedGroupCommitLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.wal")
	flog, err := wal.OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	g := wal.NewGroupCommitLog(flog, wal.GroupWithMetricsRegistry(obs.NewRegistry()))
	e := newTestEngine(t, WithMetrics(obs.NewRegistry()))
	if err := e.RegisterProcess(chainProcess("Chain")); err != nil {
		t.Fatal(err)
	}
	const n = 12
	res, err := e.RunFleet(FleetOptions{
		Process: "Chain", N: n, Parallel: 4,
		Input: func(i int) map[string]expr.Value { return nil },
		Log:   g,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished != n {
		t.Fatalf("finished %d of %d: %v", res.Finished, n, res.Err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	records, err := wal.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// created + done + 3×(started+activity) per instance.
	if want := n * 8; len(records) != want {
		t.Fatalf("log has %d records, want %d", len(records), want)
	}

	e2 := newTestEngine(t, WithMetrics(obs.NewRegistry()))
	if err := e2.RegisterProcess(chainProcess("Chain")); err != nil {
		t.Fatal(err)
	}
	insts, err := RecoverAll(e2, records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != n {
		t.Fatalf("recovered %d instances, want %d", len(insts), n)
	}
	for _, inst := range insts {
		if !inst.Finished() {
			t.Fatalf("recovered instance %s not finished", inst.ID())
		}
	}
}

func TestRecoverAllErrors(t *testing.T) {
	e := newTestEngine(t, WithMetrics(obs.NewRegistry()))
	if err := e.RegisterProcess(chainProcess("Chain")); err != nil {
		t.Fatal(err)
	}
	// A subsequence that does not begin with RecCreated must fail.
	records := []wal.Record{
		{Type: wal.RecStartedActivity, Instance: "i1", Path: "A"},
	}
	if _, err := RecoverAll(e, records, nil); err == nil {
		t.Fatal("headless instance subsequence accepted")
	}
	if _, err := RecoverAll(e, []wal.Record{{Type: wal.RecCreated}}, nil); err == nil {
		t.Fatal("record without instance ID accepted")
	}
}
