package history

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

// encodeEvent writes one event as a JSON line.
func encodeEvent(w io.Writer, e Event) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Store is an in-memory, normalized event store loaded from a history/v1
// trail export or a flight-recorder dump. Events keep file order; Seq is
// always populated (assigned from file order when the source had none).
type Store struct {
	// Schema is the stamp the file carried: history.Schema,
	// obs.FlightSchema, or "" for a bare pre-stamp flight dump.
	Schema string
	Events []Event
}

// header is the first-line schema stamp of stamped JSONL files.
type header struct {
	Schema string `json:"schema"`
}

// Load reads a JSONL event file: a history/v1 trail export, a flight/v1
// recorder dump, or a bare (pre-stamp) flight dump. A stamped file whose
// schema is not a known vocabulary is rejected — silent misreads are
// exactly what the stamp exists to prevent.
func Load(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Read is Load over an open stream.
func Read(r io.Reader) (*Store, error) {
	s := &Store{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if first {
			first = false
			var h header
			if err := json.Unmarshal(line, &h); err == nil && h.Schema != "" {
				switch h.Schema {
				case Schema, obs.FlightSchema:
					s.Schema = h.Schema
					continue
				default:
					return nil, fmt.Errorf("history: unknown schema %q (want %s or %s)", h.Schema, Schema, obs.FlightSchema)
				}
			}
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("history: line %d: %w", len(s.Events)+1, err)
		}
		if ev.Seq == 0 {
			ev.Seq = int64(len(s.Events)) + 1
		}
		s.Events = append(s.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// FromEvents builds a store from in-memory bus events (oldest first), as
// returned by obs.Recorder.Events — the zero-serialization ingestion
// path tests and the E13 soak use.
func FromEvents(evs []obs.Event) *Store {
	s := &Store{Schema: Schema}
	for i, ev := range evs {
		e := FromObs(ev)
		e.Seq = int64(i) + 1
		s.Events = append(s.Events, e)
	}
	return s
}

// Aggregate evaluates the fleet-aggregation query class over the whole
// store. It is, by construction, the continuous query fed to completion:
// one evaluator serves both the batch and the incremental path, so the
// two can never disagree (E13 asserts the equivalence at every prefix
// anyway).
func (s *Store) Aggregate() *Aggregate {
	c := NewContinuous()
	for _, ev := range s.Events {
		c.Feed(ev)
	}
	return c.Result()
}
