package history

import (
	"sort"

	"repro/internal/obs"
)

// Aggregate is the result of the fleet-aggregation query class: instance
// outcomes, failure causes, the compensation rate, overload/retry/breaker
// counters, and per-program latency quantiles from dispatch/finished
// event pairs. Counts deliberately mirror the engine's metric registry
// 1:1 (instance.finished events ↔ engine.instances.finished, and so on);
// the E13 soak asserts exact agreement between a recorded run's
// aggregation and the registry that instrumented it live.
type Aggregate struct {
	Events int64 `json:"events"`

	Created  int64 `json:"created"`
	Started  int64 `json:"started"`
	Finished int64 `json:"finished"`
	Failed   int64 `json:"failed"`
	Canceled int64 `json:"canceled"`

	// Causes counts instance.failed events by failure cause.
	Causes map[string]int64 `json:"causes,omitempty"`

	// Compensations counts compensation.entered events; CompensationRate
	// is Compensations / Started (0 when nothing started).
	Compensations    int64   `json:"compensations"`
	CompensationRate float64 `json:"compensation_rate"`

	Retries      int64 `json:"retries"`
	Sheds        int64 `json:"sheds"`
	BreakerTrips int64 `json:"breaker_trips"`
	Rebalances   int64 `json:"rebalances"`
	DeadPaths    int64 `json:"dead_paths"`
	Loops        int64 `json:"loops"`

	// Latency holds per-program quantiles of the dispatch→finished pair
	// wall time (decade-bucket interpolation, the same estimator as the
	// registry's engine.program.ns histogram — see
	// obs.HistogramSnapshot.Quantile).
	Latency map[string]obs.LatencyQuantiles `json:"latency,omitempty"`
}

// Programs returns the programs with latency pairs, sorted.
func (a *Aggregate) Programs() []string {
	out := make([]string, 0, len(a.Latency))
	for p := range a.Latency {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// pairKey identifies one activity execution for dispatch/finished
// pairing.
type pairKey struct {
	inst string
	path string
	iter int
}

// Continuous evaluates the aggregation predicates incrementally — the
// continuous-query engine behind `wfquery tail`, fed one event at a time
// from a live /events SSE stream (or any prefix of a recorded trail).
// Memory is bounded: beyond the fixed counters it holds one decade-bucket
// histogram per distinct program name and one in-flight entry per
// dispatched-but-unfinished activity, and the in-flight table of an
// instance is dropped the moment a terminal instance event arrives — so
// an endless stream of failing instances cannot leak pair state.
// MaxInflight exposes the high-water mark for the bounded-memory tests.
type Continuous struct {
	agg      Aggregate
	causes   map[string]int64
	reg      *obs.Registry
	programs map[string]*obs.Histogram
	// inflight: instance → (pairKey → dispatch At).
	inflight    map[string]map[pairKey]int64
	inflightLen int
	maxInflight int
}

// NewContinuous returns an empty continuous evaluator.
func NewContinuous() *Continuous {
	return &Continuous{
		causes:   make(map[string]int64),
		reg:      obs.NewRegistry(),
		programs: make(map[string]*obs.Histogram),
		inflight: make(map[string]map[pairKey]int64),
	}
}

// Feed evaluates one event.
func (c *Continuous) Feed(ev Event) {
	c.agg.Events++
	switch ev.Kind {
	case obs.EvInstanceCreated:
		c.agg.Created++
	case obs.EvInstanceStarted:
		c.agg.Started++
	case obs.EvInstanceFinished:
		c.agg.Finished++
		c.dropInstance(ev.Instance)
	case obs.EvInstanceFailed:
		c.agg.Failed++
		c.causes[ev.Cause]++
		c.dropInstance(ev.Instance)
	case obs.EvInstanceCanceled:
		c.agg.Canceled++
		c.dropInstance(ev.Instance)
	case obs.EvCompensation:
		c.agg.Compensations++
	case obs.EvActivityRetry:
		c.agg.Retries++
	case obs.EvFleetShed, obs.EvShardShed:
		c.agg.Sheds++
	case obs.EvBreakerOpen:
		c.agg.BreakerTrips++
	case obs.EvShardRebalance:
		c.agg.Rebalances++
	case obs.EvActivityDeadPath:
		c.agg.DeadPaths++
	case obs.EvActivityLoop:
		c.agg.Loops++
	case obs.EvActivityDispatch:
		m := c.inflight[ev.Instance]
		if m == nil {
			m = make(map[pairKey]int64)
			c.inflight[ev.Instance] = m
		}
		k := pairKey{ev.Instance, ev.Path, ev.Iter}
		if _, dup := m[k]; !dup {
			c.inflightLen++
		}
		m[k] = ev.At
		if c.inflightLen > c.maxInflight {
			c.maxInflight = c.inflightLen
		}
	case obs.EvActivityFinished:
		if ev.Program == "" {
			break
		}
		m := c.inflight[ev.Instance]
		k := pairKey{ev.Instance, ev.Path, ev.Iter}
		at, ok := m[k]
		if !ok {
			break // dispatch fell outside the recorded window (ring wrap)
		}
		delete(m, k)
		c.inflightLen--
		if len(m) == 0 {
			delete(c.inflight, ev.Instance)
		}
		h := c.programs[ev.Program]
		if h == nil {
			h = c.reg.Histogram("pair." + ev.Program)
			c.programs[ev.Program] = h
		}
		h.Observe(ev.At - at)
	}
}

// dropInstance releases all pair state of a terminally-resolved
// instance — the bounded-memory guarantee under failing workloads, where
// the dispatched activity that caused the failure never emits a
// finished event.
func (c *Continuous) dropInstance(inst string) {
	if m, ok := c.inflight[inst]; ok {
		c.inflightLen -= len(m)
		delete(c.inflight, inst)
	}
}

// Inflight reports the current number of unpaired dispatches;
// MaxInflight the high-water mark over the whole feed.
func (c *Continuous) Inflight() int    { return c.inflightLen }
func (c *Continuous) MaxInflight() int { return c.maxInflight }

// PairHistogram exposes one program's pair-latency histogram snapshot —
// the satellite test pins its buckets against the registry's
// engine.program.ns histogram on the same run.
func (c *Continuous) PairHistogram(program string) (obs.HistogramSnapshot, bool) {
	h, ok := c.programs[program]
	if !ok {
		return obs.HistogramSnapshot{}, false
	}
	return h.SnapshotNow(), true
}

// Result digests the current state into an Aggregate. It may be called
// after every Feed — an aggregation over a prefix of the stream equals
// the batch aggregation of that prefix (asserted by E13).
func (c *Continuous) Result() *Aggregate {
	a := c.agg // counters copy by value
	if len(c.causes) > 0 {
		a.Causes = make(map[string]int64, len(c.causes))
		for k, v := range c.causes {
			a.Causes[k] = v
		}
	}
	if a.Started > 0 {
		a.CompensationRate = float64(a.Compensations) / float64(a.Started)
	}
	if len(c.programs) > 0 {
		a.Latency = make(map[string]obs.LatencyQuantiles, len(c.programs))
		for p, h := range c.programs {
			a.Latency[p] = obs.QuantilesOf(h.SnapshotNow())
		}
	}
	return &a
}
