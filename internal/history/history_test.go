package history

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/wal"
)

// chainProcess builds A -> B -> C with RC=0 transition conditions.
func chainProcess(name string) *model.Process {
	p := model.NewProcess(name)
	for _, n := range []string{"A", "B", "C"} {
		p.Activities = append(p.Activities, &model.Activity{Name: n, Kind: model.KindProgram, Program: "ok"})
	}
	p.Control = []*model.ControlConnector{
		{From: "A", To: "B", Condition: expr.MustParse("RC = 0")},
		{From: "B", To: "C", Condition: expr.MustParse("RC = 0")},
	}
	return p
}

// buildChain is the test Builder: a fresh engine with the "ok" program
// and the Chain process registered.
func buildChain(opts ...engine.Option) (*engine.Engine, error) {
	e := engine.New(opts...)
	if err := e.RegisterProgram("ok", engine.ProgramFunc(func(inv *engine.Invocation) error {
		inv.Out.SetRC(0)
		return nil
	})); err != nil {
		return nil, err
	}
	if err := e.RegisterProcess(chainProcess("Chain")); err != nil {
		return nil, err
	}
	return e, nil
}

func runChain(t *testing.T, id string, log wal.Log, opts ...engine.Option) *engine.Instance {
	t.Helper()
	e, err := buildChain(opts...)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstanceID("Chain", id, nil, log)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestWriterRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trail.jsonl")
	w, err := NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	bus := obs.NewBus()
	w.Attach(bus)
	runChain(t, "wf-1", wal.Discard, engine.WithBus(bus), engine.WithMetrics(obs.NewRegistry()))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Schema != Schema {
		t.Fatalf("schema = %q, want %q", s.Schema, Schema)
	}
	if len(s.Events) == 0 {
		t.Fatal("no events exported")
	}
	for i, ev := range s.Events {
		if ev.Seq != int64(i)+1 {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	agg := s.Aggregate()
	if agg.Started != 1 || agg.Finished != 1 || agg.Failed != 0 {
		t.Fatalf("aggregate = %+v", agg)
	}
	if len(agg.Latency) != 1 || agg.Latency["ok"].Count != 3 {
		t.Fatalf("latency pairs = %+v, want 3 'ok' pairs", agg.Latency)
	}
}

func TestLoadFlightDumpAndBareJSONL(t *testing.T) {
	bus := obs.NewBus()
	rec := obs.NewRecorder(64)
	detach := bus.Attach(rec.Record)
	runChain(t, "wf-1", wal.Discard, engine.WithBus(bus), engine.WithMetrics(obs.NewRegistry()))
	detach()

	// Stamped flight dump.
	dir := t.TempDir()
	flight := filepath.Join(dir, "flight.jsonl")
	if err := rec.DumpFile(flight); err != nil {
		t.Fatal(err)
	}
	s, err := Load(flight)
	if err != nil {
		t.Fatal(err)
	}
	if s.Schema != obs.FlightSchema {
		t.Fatalf("schema = %q, want %q", s.Schema, obs.FlightSchema)
	}
	if got := s.Aggregate().Finished; got != 1 {
		t.Fatalf("finished = %d", got)
	}

	// Bare pre-stamp JSONL (header stripped) still loads.
	raw, err := os.ReadFile(flight)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(string(raw), "\n", 2)
	bare := filepath.Join(dir, "bare.jsonl")
	if err := os.WriteFile(bare, []byte(lines[1]), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(bare)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Schema != "" || len(s2.Events) != len(s.Events) {
		t.Fatalf("bare load: schema %q, %d events, want \"\" and %d", s2.Schema, len(s2.Events), len(s.Events))
	}

	// Unknown schema stamps are rejected, not misread.
	alien := filepath.Join(dir, "alien.jsonl")
	if err := os.WriteFile(alien, []byte("{\"schema\":\"history/v99\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(alien); err == nil || !strings.Contains(err.Error(), "unknown schema") {
		t.Fatalf("alien schema accepted: %v", err)
	}
}

// TestContinuousEqualsBatchAtEveryPrefix pins the continuous-query
// contract: Result() after feeding k events equals the batch aggregation
// of the first k events, for every k.
func TestContinuousEqualsBatchAtEveryPrefix(t *testing.T) {
	bus := obs.NewBus()
	rec := obs.NewRecorder(256)
	detach := bus.Attach(rec.Record)
	for _, id := range []string{"wf-1", "wf-2", "wf-3"} {
		runChain(t, id, wal.Discard, engine.WithBus(bus), engine.WithMetrics(obs.NewRegistry()))
	}
	detach()
	s := FromEvents(rec.Events())
	c := NewContinuous()
	for k, ev := range s.Events {
		c.Feed(ev)
		batch := &Store{Events: s.Events[:k+1]}
		if got, want := c.Result(), batch.Aggregate(); !reflect.DeepEqual(got, want) {
			t.Fatalf("prefix %d: continuous %+v != batch %+v", k+1, got, want)
		}
	}
}

// TestContinuousBoundedMemory pins the leak-resistance property: an
// unending stream of instances (including failing ones whose dispatched
// activity never finishes) keeps the in-flight pair table bounded.
func TestContinuousBoundedMemory(t *testing.T) {
	c := NewContinuous()
	for i := 0; i < 1000; i++ {
		inst := "wf"
		c.Feed(Event{Kind: obs.EvInstanceStarted, Instance: inst})
		c.Feed(Event{Kind: obs.EvActivityDispatch, Instance: inst, Path: "A", At: 10})
		// The activity never finishes: the instance fails.
		c.Feed(Event{Kind: obs.EvInstanceFailed, Instance: inst, Cause: "boom"})
	}
	if c.Inflight() != 0 {
		t.Fatalf("inflight = %d after terminal events, want 0", c.Inflight())
	}
	if c.MaxInflight() != 1 {
		t.Fatalf("max inflight = %d, want 1", c.MaxInflight())
	}
	a := c.Result()
	if a.Failed != 1000 || a.Causes["boom"] != 1000 {
		t.Fatalf("aggregate = %+v", a)
	}
}

// TestStateAsOfEveryBoundary is the unit-level time-travel oracle: a
// live chain run records a snapshot at every trail boundary through the
// observer seam; replaying the WAL records with StateAsOf must
// reconstruct each of them exactly. (E13 scales this to the reference
// workloads, a checkpointed segment directory and a 3-shard fleet.)
func TestStateAsOfEveryBoundary(t *testing.T) {
	var oracle []*engine.InstanceSnapshot
	log := &wal.MemLog{}
	runChain(t, "wf-1", log,
		engine.WithMetrics(obs.NewRegistry()),
		engine.WithTrailObserver(func(inst *engine.Instance, ev engine.Event) {
			oracle = append(oracle, inst.Snapshot())
		}))
	if len(oracle) == 0 {
		t.Fatal("no boundaries observed")
	}
	for k := 1; k <= len(oracle); k++ {
		snap, n, err := StateAsOf(buildChain, log.Records(), "wf-1", k)
		if err != nil {
			t.Fatalf("boundary %d: %v", k, err)
		}
		if n != len(oracle) {
			t.Fatalf("boundary %d: replay visited %d boundaries, live run had %d", k, n, len(oracle))
		}
		if !snap.Equal(oracle[k-1]) {
			t.Fatalf("boundary %d: replayed snapshot %+v != live %+v", k, snap, oracle[k-1])
		}
	}
	// k <= 0 returns the newest boundary.
	snap, _, err := StateAsOf(buildChain, log.Records(), "wf-1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Equal(oracle[len(oracle)-1]) {
		t.Fatal("newest-boundary query != final live snapshot")
	}
	// Past the recorded history is an error, not a guess.
	if _, _, err := StateAsOf(buildChain, log.Records(), "wf-1", len(oracle)+1); err == nil {
		t.Fatal("boundary past recorded history accepted")
	}
}

// TestSourceCheckpointLadder pins the rung selection of Source.Records:
// an instance live in the newest checkpoint resolves through the bounded
// view (reading checkpoint + tail, not the whole history); an instance
// that finished before the checkpoint needs the full rung; a fresh
// instance born after the cover resolves from the tail alone.
func TestSourceCheckpointLadder(t *testing.T) {
	dir := t.TempDir()
	seg, err := wal.OpenSegmentedLog(dir, wal.SegmentMaxRecords(4))
	if err != nil {
		t.Fatal(err)
	}
	// Two instances finish before the checkpoint; one is created after.
	runChain(t, "wf-done-1", seg, engine.WithMetrics(obs.NewRegistry()))
	runChain(t, "wf-done-2", seg, engine.WithMetrics(obs.NewRegistry()))
	ck := engine.NewCheckpointer(seg, engine.CheckpointDir(dir))
	if err := ck.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	runChain(t, "wf-live", seg, engine.WithMetrics(obs.NewRegistry()))
	if err := seg.Close(); err != nil {
		t.Fatal(err)
	}

	src := &Source{WAL: dir}
	// Born after the cover: bounded view suffices.
	recs, st, err := src.Records("wf-live")
	if err != nil {
		t.Fatal(err)
	}
	if st.Rung != wal.SourceNewestCheckpoint {
		t.Fatalf("rung = %q, want %q", st.Rung, wal.SourceNewestCheckpoint)
	}
	snap, _, err := StateAsOf(buildChain, recs, "wf-live", 0)
	if err != nil || snap.Status != "finished" {
		t.Fatalf("live replay: %v, %+v", err, snap)
	}

	// Finished before the checkpoint: full-history rung.
	_, st, err = src.Records("wf-done-1")
	if err != nil {
		t.Fatal(err)
	}
	if st.Rung != wal.SourceFullReplay {
		t.Fatalf("done instance rung = %q, want %q", st.Rung, wal.SourceFullReplay)
	}

	// Forced full baseline reads everything.
	full := &Source{WAL: dir, Full: true}
	_, fst, err := full.Records("wf-live")
	if err != nil {
		t.Fatal(err)
	}
	if fst.Rung != wal.SourceFullReplay || fst.RecordsRead < st.RecordsRead {
		t.Fatalf("full baseline stats = %+v", fst)
	}

	// Unknown instances are an error.
	if _, _, err := src.Records("wf-nope"); err == nil {
		t.Fatal("unknown instance accepted")
	}
}
