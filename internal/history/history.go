// Package history is the post-hoc observability layer: it turns the
// event-sourced remains of a run — WAL segments, checkpoints,
// flight-recorder JSONL, sharded shard-NN/ layouts, and the streaming
// history/v1 trail export — into a queryable store. Three query classes
// are served (cmd/wfquery is the CLI face):
//
//   - time travel: "state of instance X as of trail boundary T",
//     reconstructed by deterministic re-navigation through the existing
//     checkpoint recovery ladder with a trail observer capturing the
//     snapshot at boundary T (StateAsOf). The E13 soak proves every
//     reconstructed snapshot identical to a live Instance.Snapshot taken
//     at the same boundary.
//   - fleet aggregations: failure causes, compensation rates,
//     shed/retry/breaker-trip counts, and per-program latency
//     p50/p95/p99 from dispatch/finished event pairs (Continuous fed to
//     completion, or Store.Aggregate).
//   - continuous queries: the same predicates evaluated incrementally
//     over a live /events SSE tail with bounded memory (Continuous).
//
// The metrics registry (PR 2) answers "how much, right now", the live
// plane (PR 5) answers "what is happening", and this package answers
// "what happened, and what was true at T".
package history

import (
	"bufio"
	"fmt"
	"os"
	"sync"

	"repro/internal/obs"
)

// Schema identifies the history/v1 trail-export layout: a JSONL stream
// whose first line is {"schema":"history/v1"} and whose remaining lines
// are flight-recorder events (the obs.Event wire format, pinned by the
// golden-schema test in internal/obs) extended with a global "seq"
// assigned at export time. Flight-recorder dumps (obs.FlightSchema) are
// the same event vocabulary without seq and bounded by the ring size;
// Load ingests both.
const Schema = "history/v1"

// Event is one normalized history/v1 event. The JSON field names are the
// obs.Event wire format plus "seq"; a flight-recorder line decodes into
// the same struct with Seq left zero (Load then assigns file order).
type Event struct {
	Seq      int64  `json:"seq,omitempty"`
	Kind     string `json:"kind"`
	Instance string `json:"inst,omitempty"`
	Path     string `json:"path,omitempty"`
	Iter     int    `json:"iter,omitempty"`
	Program  string `json:"prog,omitempty"`
	Cause    string `json:"cause,omitempty"`
	RC       int64  `json:"rc,omitempty"`
	N        int64  `json:"n,omitempty"`
	Shard    int    `json:"shard,omitempty"`
	DurNs    int64  `json:"dur_ns,omitempty"`
	At       int64  `json:"at_ns"`
}

// FromObs normalizes a bus event; the export-time sequence number is
// assigned by the Writer (or by Load, for stamped files without one).
func FromObs(ev obs.Event) Event {
	return Event{
		Kind:     ev.Kind,
		Instance: ev.Instance,
		Path:     ev.Path,
		Iter:     ev.Iter,
		Program:  ev.Program,
		Cause:    ev.Cause,
		RC:       ev.RC,
		N:        ev.N,
		Shard:    ev.Shard,
		DurNs:    ev.DurNs,
		At:       ev.At,
	}
}

// Subcommands lists cmd/wfquery's registered subcommands, sorted. It is
// the canonical registry: the CLI dispatches exactly these, and doclint
// -xref cross-checks OPERATIONS.md's wfquery one-liners against it so
// documented recipes cannot drift from the binary (exit 2 on drift).
func Subcommands() []string { return []string{"agg", "reach", "state", "tail"} }

// Writer streams a history/v1 trail export to disk: a schema header
// line, then one event per line with a monotonically increasing seq.
// Attach it to a bus for the run's duration; unlike the flight
// recorder's bounded ring it retains everything. Events may arrive from
// many publisher goroutines, so Record serializes internally. Writes are
// buffered; Close (idempotent, safe on every exit path — wfrun calls it
// from the fatal path too) flushes, so a crashed run keeps a queryable
// prefix.
type Writer struct {
	mu     sync.Mutex
	f      *os.File
	bw     *bufio.Writer
	seq    int64
	err    error
	closed bool
	detach func()
}

// NewWriter creates (truncating) the export file and writes the schema
// header.
func NewWriter(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &Writer{f: f, bw: bufio.NewWriter(f)}
	if _, err := fmt.Fprintf(w.bw, "{\"schema\":%q}\n", Schema); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Record appends one event; it is the bus-tap entry point. Write errors
// are sticky and surfaced by Close.
func (w *Writer) Record(ev obs.Event) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.err != nil {
		return
	}
	w.seq++
	e := FromObs(ev)
	e.Seq = w.seq
	if err := encodeEvent(w.bw, e); err != nil {
		w.err = err
	}
}

// Attach subscribes the writer to the bus as a synchronous tap (it never
// misses an event) and remembers the detach handle for Close.
func (w *Writer) Attach(b *obs.Bus) {
	w.detach = b.Attach(w.Record)
}

// Events reports how many events have been written.
func (w *Writer) Events() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Close detaches from the bus, flushes and closes the file. It is
// idempotent: every wfrun exit path — normal return, fatal(), forced
// second-signal exit — may call it, and the first call wins.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.detach != nil {
		w.detach()
	}
	if err := w.bw.Flush(); err != nil && w.err == nil {
		w.err = err
	}
	if err := w.f.Close(); err != nil && w.err == nil {
		w.err = err
	}
	return w.err
}
