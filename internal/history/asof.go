package history

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/engine"
	"repro/internal/wal"
)

// Source locates a run's write-ahead state on disk — the input of the
// time-travel query class. Layouts are the ones wfrun produces: a single
// log file, a segment directory (with an optional separate checkpoint
// directory, wfrun -checkpoint), or a sharded fleet root whose shard-NN/
// subdirectories each hold segments and co-located checkpoints.
type Source struct {
	// WAL is the log file, segment directory, or sharded fleet root.
	WAL string
	// Checkpoint is a separate checkpoint directory (wfrun -checkpoint);
	// empty means checkpoints are co-located with the segments (the
	// sharded layout) or absent.
	Checkpoint string
	// Full forces the full-history rung — read and demultiplex the
	// entire WAL even when a usable checkpoint exists. It is the
	// baseline B16 measures the checkpoint ladder against.
	Full bool
}

// Stats reports how a time-travel query was satisfied: which recovery
// rung supplied the queried instance's records, and how much history had
// to be read versus replayed. The B16 table gates the bounded path's
// advantage on these.
type Stats struct {
	// Rung is the checkpoint-ladder rung (wal.SourceNewestCheckpoint,
	// wal.SourcePreviousCheckpoint, wal.SourceFullReplay) that supplied
	// the records.
	Rung string
	// RecordsRead counts records parsed from disk to find the instance;
	// RecordsReplayed counts the instance's own records handed to the
	// replay engine.
	RecordsRead     int
	RecordsReplayed int
	// Shards is the number of shard directories probed (0 for unsharded
	// layouts).
	Shards int
}

// filterInstance keeps records of one instance, preserving order.
func filterInstance(records []wal.Record, id string) []wal.Record {
	var out []wal.Record
	for _, r := range records {
		if r.Instance == id {
			out = append(out, r)
		}
	}
	return out
}

// demuxLive splits a checkpoint's compacted live-instance records by
// instance.
func demuxLive(records []wal.Record) map[string][]wal.Record {
	m := make(map[string][]wal.Record)
	for _, r := range records {
		m[r.Instance] = append(m[r.Instance], r)
	}
	return m
}

// shardDirs lists shard-NN subdirectories of root, or nil when root is
// not a sharded fleet layout.
func shardDirs(root string) []string {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			var n int
			if _, err := fmt.Sscanf(e.Name(), "shard-%02d", &n); err == nil {
				dirs = append(dirs, filepath.Join(root, e.Name()))
			}
		}
	}
	sort.Strings(dirs)
	return dirs
}

// Records returns the WAL records needed to replay instance id, walking
// the same recovery ladder as wfrun -resume: the newest usable
// checkpoint's compacted records plus the repaired segment tail when the
// instance is live in it, the full (repaired) history otherwise — or
// always, with Full set. Sharded roots are probed shard by shard through
// their bounded views first, so locating one instance in a fleet never
// costs a fleet-wide scan while a checkpoint covers it.
func (s *Source) Records(id string) ([]wal.Record, *Stats, error) {
	fi, err := os.Stat(s.WAL)
	if err != nil {
		return nil, nil, err
	}
	if !fi.IsDir() {
		// Single log file: there is no checkpoint to bound the read, so
		// full history is the only rung. Tolerant read: a torn tail from
		// a crashed run must not block post-mortem queries.
		all, _, err := wal.ReadFileTolerant(s.WAL)
		if err != nil {
			return nil, nil, err
		}
		recs := filterInstance(all, id)
		st := &Stats{Rung: wal.SourceFullReplay, RecordsRead: len(all), RecordsReplayed: len(recs)}
		if len(recs) == 0 {
			return nil, st, fmt.Errorf("history: instance %s not found in %s", id, s.WAL)
		}
		return recs, st, nil
	}
	if shards := shardDirs(s.WAL); len(shards) > 0 {
		st := &Stats{Shards: len(shards)}
		// Bounded pass over every shard first; only then full scans.
		for _, dir := range shards {
			recs, dst, found, err := s.fromDir(dir, dir, id, false)
			if err != nil {
				return nil, st, err
			}
			st.RecordsRead += dst.RecordsRead
			if found {
				st.Rung, st.RecordsReplayed = dst.Rung, dst.RecordsReplayed
				return recs, st, nil
			}
		}
		for _, dir := range shards {
			recs, dst, found, err := s.fromDir(dir, dir, id, true)
			if err != nil {
				return nil, st, err
			}
			st.RecordsRead += dst.RecordsRead
			if found {
				st.Rung, st.RecordsReplayed = dst.Rung, dst.RecordsReplayed
				return recs, st, nil
			}
		}
		return nil, st, fmt.Errorf("history: instance %s not found in any shard under %s", id, s.WAL)
	}
	ckpt := s.Checkpoint
	if ckpt == "" {
		ckpt = s.WAL // co-located (fleet shard layout, E9 soak layout)
	}
	recs, st, found, err := s.fromDir(s.WAL, ckpt, id, s.Full)
	if err != nil {
		return nil, st, err
	}
	if !found && !s.Full {
		recs, st, found, err = s.fromDir(s.WAL, ckpt, id, true)
		if err != nil {
			return nil, st, err
		}
	}
	if !found {
		return nil, st, fmt.Errorf("history: instance %s not found in %s", id, s.WAL)
	}
	return recs, st, nil
}

// fromDir resolves one segment directory (checkpoints in ckptDir). With
// full set — or when no usable checkpoint exists — it reads everything;
// otherwise it loads the newest checkpoint and the post-cover tail, and
// reports found only if the instance is live in that bounded view (a
// Done instance's compacted records are gone from the checkpoint, so
// intermediate states need the full-history rung).
func (s *Source) fromDir(segDir, ckptDir, id string, full bool) ([]wal.Record, *Stats, bool, error) {
	st := &Stats{}
	if !full {
		cp, rung, err := wal.LoadCheckpointStore(ckptDir, nil)
		if err != nil {
			return nil, st, false, err
		}
		if cp != nil {
			tail, _, err := wal.RepairSegments(segDir, cp.Cover)
			if err != nil {
				return nil, st, false, err
			}
			st.Rung = rung
			st.RecordsRead = len(cp.Records) + len(tail)
			live := demuxLive(cp.Records)[id]
			tailRecs := filterInstance(tail, id)
			switch {
			case len(live) > 0:
				recs := append(append([]wal.Record{}, live...), tailRecs...)
				st.RecordsReplayed = len(recs)
				return recs, st, true, nil
			case len(tailRecs) > 0 && tailRecs[0].Type == wal.RecCreated:
				// Born after the checkpoint's cover: the tail is complete.
				st.RecordsReplayed = len(tailRecs)
				return tailRecs, st, true, nil
			default:
				// Done before the checkpoint (or unknown): needs the full rung.
				return nil, st, false, nil
			}
		}
		// No usable checkpoint: fall through to full replay.
	}
	all, _, err := wal.RepairSegments(segDir, 0)
	if err != nil {
		return nil, st, false, err
	}
	st.Rung = wal.SourceFullReplay
	st.RecordsRead = len(all)
	recs := filterInstance(all, id)
	st.RecordsReplayed = len(recs)
	return recs, st, len(recs) > 0, nil
}

// Builder constructs a fresh engine with the run's programs and process
// templates registered; the time-travel query appends its own options
// (the trail observer) when replaying. cmd/wfquery builds one from the
// FDL file; the sim soaks reuse their workload builders.
type Builder func(opts ...engine.Option) (*engine.Engine, error)

// StateAsOf replays instance id from its records and returns its
// snapshot as of trail boundary k — the state the live instance had just
// after appending its k-th audit-trail event (1-based; k <= 0 means the
// newest boundary). Recovery is deterministic re-navigation that
// reproduces the identical trail (E4/E9), so the replay revisits every
// historical boundary in order and the trail observer captures the one
// asked for; E13 proves the result identical to a live Instance.Snapshot
// taken at the same boundary. The returned count is the total number of
// boundaries the replay visited.
//
// A record set that ends mid-activity (a crashed run) replays cleanly up
// to its last logged completion; querying a boundary past recorded
// history is an error, and whatever the engine does beyond the log
// (wfquery registers halting stub programs there) cannot disturb
// already-captured snapshots.
func StateAsOf(build Builder, records []wal.Record, id string, k int) (*engine.InstanceSnapshot, int, error) {
	recs := filterInstance(records, id)
	if len(recs) == 0 {
		return nil, 0, fmt.Errorf("history: no records for instance %s", id)
	}
	var snap *engine.InstanceSnapshot
	n := 0
	e, err := build(engine.WithTrailObserver(func(inst *engine.Instance, ev engine.Event) {
		if inst.ID() != id {
			return
		}
		n++
		if n == k || k <= 0 {
			snap = inst.Snapshot()
		}
	}))
	if err != nil {
		return nil, 0, err
	}
	_, rerr := engine.Recover(e, recs, wal.Discard)
	if snap != nil && (k <= 0 || snap.TrailLen == k) {
		return snap, n, nil
	}
	if rerr != nil {
		return nil, n, rerr
	}
	return nil, n, fmt.Errorf("history: instance %s has %d trail boundaries, none numbered %d", id, n, k)
}

// StateAt resolves the instance's records through the source's recovery
// ladder and replays to boundary k — the whole time-travel query in one
// step.
func (s *Source) StateAt(build Builder, id string, k int) (*engine.InstanceSnapshot, int, *Stats, error) {
	recs, st, err := s.Records(id)
	if err != nil {
		return nil, 0, st, err
	}
	snap, n, err := StateAsOf(build, recs, id, k)
	return snap, n, st, err
}
