// Package fdl implements the process definition language of the
// reproduction — a textual format modeled on the FlowMark Definition
// Language (FDL) that the Exotica/FMTM pre-processor of the paper emits
// (Figure 5). A definition file declares structure types, program
// registrations and process definitions; it can be exported from and
// imported into the in-memory model with a stable round trip.
//
// Syntax sketch (single-quoted names, double-quoted strings, /* comments */
// and line comments starting with //):
//
//	STRUCTURE 'SagaState'
//	  'State_1': LONG DEFAULT -1
//	  'total':   'Money'
//	END 'SagaState'
//
//	PROGRAM 'book_flight'
//	  DESCRIPTION "books the flight"
//	END 'book_flight'
//
//	PROCESS 'Travel' ( 'Order', 'SagaState' )
//	  PROGRAM_ACTIVITY 'A' ( 'Order', 'Default' )
//	    PROGRAM 'book_flight'
//	    START MANUAL WHEN OR
//	    EXIT WHEN "RC = 0"
//	    DONE_BY ROLE 'agent'
//	    NOTIFY AFTER 60 ROLE 'manager'
//	  END 'A'
//	  BLOCK 'B' ( 'Default', 'Default' )
//	    ...activities and connectors...
//	  END 'B'
//	  PROCESS_ACTIVITY 'S' ( 'Default', 'Default' )
//	    PROCESS 'Other'
//	  END 'S'
//	  CONTROL FROM 'A' TO 'B' WHEN "RC = 0"
//	  DATA FROM 'A' TO SINK MAP 'RC' TO 'State_1'
//	END 'Travel'
//
// In DATA connectors the keywords SOURCE and SINK denote the enclosing
// scope's input and output containers (model.ScopeRef endpoints).
package fdl
