package fdl

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/model"
)

// This file implements the static reachability query class of wfquery
// ("wfquery reach"): over a compiled process graph, can activity X ever
// run in an execution where activity Y terminated with a given outcome?
// The analysis is a may-run fixpoint with three-valued connector
// evaluation and is a sound over-approximation: a "no" is definitive
// (no execution exists), a "yes" means no proof of impossibility was
// found. It understands exactly the structure the FMTM translations
// emit — RC/State_k comparisons, AND/OR joins, dead-path elimination,
// blocks, scope data maps and pass-through copy programs — and degrades
// to "don't know" (both outcomes possible) for anything richer.

// Outcome constrains how the anchor activity of a reach query
// terminated.
type Outcome uint8

const (
	// OutcomeAny places no constraint on the anchor's return code.
	OutcomeAny Outcome = iota
	// OutcomeCommit fixes the anchor's RC to 0.
	OutcomeCommit
	// OutcomeAbort fixes the anchor's RC to a non-zero value.
	OutcomeAbort
)

// ParseOutcome maps the wfquery spelling to an Outcome.
func ParseOutcome(s string) (Outcome, error) {
	switch s {
	case "", "any":
		return OutcomeAny, nil
	case "commit":
		return OutcomeCommit, nil
	case "abort":
		return OutcomeAbort, nil
	}
	return OutcomeAny, fmt.Errorf("fdl: unknown outcome %q (want any, commit or abort)", s)
}

// ReachQuery asks whether Target may run in an execution where From
// terminated with Outcome. From may be empty (plain "may Target ever
// run"). Activities are named by dotted path (Blk2.T6) or by bare name
// when unique across the process.
type ReachQuery struct {
	Process *model.Process
	From    string
	Outcome Outcome
	Target  string
	// CopyPrograms names programs that copy their input container to
	// their output verbatim (fmtm.CopyName for translated models); the
	// analysis propagates known values through them. Optional — without
	// it the analysis stays sound but answers "yes" more often.
	CopyPrograms []string
}

// ReachResult is the answer to a ReachQuery.
type ReachResult struct {
	// Reachable reports whether Target may run under the constraint;
	// false is a proof, true is absence of one.
	Reachable bool `json:"reachable"`
	// Infeasible is set when no execution satisfies the constraint at
	// all — the anchor itself cannot run, or cannot terminate with the
	// requested outcome; Reachable is then vacuously false.
	Infeasible bool `json:"infeasible,omitempty"`
	// From and Target echo the resolved dotted paths.
	From   string `json:"from,omitempty"`
	Target string `json:"target"`
}

// ActivityPaths lists every activity of the process as a dotted path,
// sorted — the vocabulary reach queries resolve names against.
func ActivityPaths(p *model.Process) []string {
	var out []string
	var walk func(g *model.Graph, prefix string)
	walk = func(g *model.Graph, prefix string) {
		for _, a := range g.Activities {
			out = append(out, prefix+a.Name)
			if a.Block != nil {
				walk(a.Block, prefix+a.Name+".")
			}
		}
	}
	walk(&p.Graph, "")
	sort.Strings(out)
	return out
}

// Reach answers a reachability query. See ReachQuery and ReachResult.
func Reach(q ReachQuery) (*ReachResult, error) {
	if q.Process == nil {
		return nil, fmt.Errorf("fdl: reach: nil process")
	}
	an := newAnalysis(q.Process, q.CopyPrograms)
	target, err := an.resolve(q.Target)
	if err != nil {
		return nil, err
	}
	res := &ReachResult{Target: an.path[target]}
	if q.From == "" {
		an.forward()
		res.Reachable = an.mayRun[target]
		return res, nil
	}
	anchor, err := an.resolve(q.From)
	if err != nil {
		return nil, err
	}
	res.From = an.path[anchor]
	// Feasibility: the anchor must be reachable at all before any
	// constrained question about "after it ran" makes sense.
	an.forward()
	if !an.mayRun[anchor] {
		res.Infeasible = true
		return res, nil
	}
	// Constrained pass: derive the facts every qualifying execution
	// shares (backward from the anchor), then re-run the forward
	// fixpoint under them.
	con := newAnalysis(q.Process, q.CopyPrograms)
	con.anchor = con.path2act[res.From]
	switch q.Outcome {
	case OutcomeCommit:
		con.constrainMember(con.anchor, "RC", absZero, nil)
	case OutcomeAbort:
		con.constrainMember(con.anchor, "RC", absNonZero, nil)
	}
	con.markMustRun(con.anchor)
	if con.infeasible {
		res.Infeasible = true
		return res, nil
	}
	con.forward()
	res.Reachable = con.mayRun[con.path2act[an.path[target]]]
	return res, nil
}

// absVal is the abstract value of an integer container member.
type absVal uint8

const (
	absTop     absVal = iota // unknown
	absZero                  // known 0
	absNonZero               // known non-zero
)

// tri is a three-valued truth: the condition may evaluate true, may
// evaluate false, or both.
type tri struct{ t, f bool }

// memberKey addresses one member of one activity's output container.
type memberKey struct {
	act    *model.Activity
	member string
}

type analysis struct {
	proc      *model.Process
	copyProgs map[string]bool

	// Structure indexes, built once.
	scopeOf  map[*model.Activity]*model.Graph // activity → containing graph
	parent   map[*model.Graph]*model.Activity // block graph → its block activity
	path     map[*model.Activity]string       // activity → dotted path
	path2act map[string]*model.Activity

	anchor     *model.Activity
	constraint map[memberKey]absVal
	infeasible bool

	mustRun map[*model.Activity]bool
	mayRun  map[*model.Activity]bool
	mayDead map[*model.Activity]bool
}

func newAnalysis(p *model.Process, copyProgs []string) *analysis {
	an := &analysis{
		proc:       p,
		copyProgs:  make(map[string]bool, len(copyProgs)),
		scopeOf:    make(map[*model.Activity]*model.Graph),
		parent:     make(map[*model.Graph]*model.Activity),
		path:       make(map[*model.Activity]string),
		path2act:   make(map[string]*model.Activity),
		constraint: make(map[memberKey]absVal),
		mustRun:    make(map[*model.Activity]bool),
		mayRun:     make(map[*model.Activity]bool),
		mayDead:    make(map[*model.Activity]bool),
	}
	for _, p := range copyProgs {
		an.copyProgs[p] = true
	}
	var walk func(g *model.Graph, prefix string)
	walk = func(g *model.Graph, prefix string) {
		for _, a := range g.Activities {
			an.scopeOf[a] = g
			an.path[a] = prefix + a.Name
			an.path2act[prefix+a.Name] = a
			if a.Block != nil {
				an.parent[a.Block] = a
				walk(a.Block, prefix+a.Name+".")
			}
		}
	}
	walk(&p.Graph, "")
	return an
}

// resolve finds an activity by dotted path, or by bare name when unique.
func (an *analysis) resolve(name string) (*model.Activity, error) {
	if name == "" {
		return nil, fmt.Errorf("fdl: reach: empty activity name")
	}
	if a, ok := an.path2act[name]; ok {
		return a, nil
	}
	var hits []string
	for p := range an.path2act {
		if p == name || strings.HasSuffix(p, "."+name) {
			hits = append(hits, p)
		}
	}
	switch len(hits) {
	case 1:
		return an.path2act[hits[0]], nil
	case 0:
		return nil, fmt.Errorf("fdl: reach: no activity %q in process %s (activities: %s)",
			name, an.proc.Name, strings.Join(ActivityPaths(an.proc), ", "))
	default:
		sort.Strings(hits)
		return nil, fmt.Errorf("fdl: reach: ambiguous activity %q in process %s (matches %s)",
			name, an.proc.Name, strings.Join(hits, ", "))
	}
}

// ---- backward pass: necessary facts of every execution where the ----
// ---- anchor terminates with the requested outcome                ----

// markMustRun records that a ran in every qualifying execution and
// chases the necessity backwards: an activity with a single incoming
// connector (or an AND join) can only have started because each
// incoming connector evaluated true on a source that itself ran, and an
// activity inside a block implies the block activity ran.
func (an *analysis) markMustRun(a *model.Activity) {
	if an.mustRun[a] {
		return
	}
	an.mustRun[a] = true
	g := an.scopeOf[a]
	if pa := an.parent[g]; pa != nil {
		an.markMustRun(pa)
	}
	inc := g.Incoming(a.Name)
	if len(inc) == 0 {
		return
	}
	if len(inc) > 1 && a.Join != model.JoinAnd {
		// OR join with several predecessors: any one may have fired;
		// no unique necessity to derive.
		return
	}
	for _, c := range inc {
		src := g.Activity(c.From)
		if src == nil {
			continue
		}
		an.markMustRun(src)
		an.constrainTrue(src, c.Condition)
	}
}

// constrainTrue derives member constraints from "condition n evaluated
// true against src's output container". Only conjunctions of RC-style
// comparisons yield facts; everything else derives nothing (sound).
func (an *analysis) constrainTrue(src *model.Activity, n expr.Node) {
	b, ok := n.(*expr.Binary)
	if !ok {
		return
	}
	if b.Op == expr.OpAnd {
		an.constrainTrue(src, b.L)
		an.constrainTrue(src, b.R)
		return
	}
	member, op, lit, ok := splitCmp(b)
	if !ok {
		return
	}
	switch {
	case op == expr.OpEq && lit == 0:
		an.constrainMember(src, member, absZero, nil)
	case op == expr.OpEq && lit != 0,
		op == expr.OpNe && lit == 0,
		op == expr.OpGt && lit >= 0,
		op == expr.OpGe && lit > 0,
		op == expr.OpLt && lit <= 0,
		op == expr.OpLe && lit < 0:
		an.constrainMember(src, member, absNonZero, nil)
	}
}

// constrainMember records a known value of a member of a's output
// container and chases it through the data plane to the producing
// activity: a block's output member comes from an inner scope-output
// map, a copy program's from its input connectors. Conflicting facts
// mean no qualifying execution exists.
func (an *analysis) constrainMember(a *model.Activity, member string, v absVal, seen map[memberKey]bool) {
	k := memberKey{a, member}
	if seen[k] {
		return
	}
	if seen == nil {
		seen = make(map[memberKey]bool)
	}
	seen[k] = true
	if old, ok := an.constraint[k]; ok {
		if old != v {
			an.infeasible = true
		}
		return
	}
	an.constraint[k] = v
	switch {
	case a.Block != nil:
		if src, f, ok := uniqueSource(a.Block, model.ScopeRef, member); ok && src != model.ScopeRef {
			if inner := a.Block.Activity(src); inner != nil {
				// A non-zero value proves the inner producer actually
				// ran (an unwritten member reads as zero).
				if v == absNonZero {
					an.markMustRun(inner)
				}
				an.constrainMember(inner, f, v, seen)
			}
		}
	case an.copyProgs[a.Program]:
		g := an.scopeOf[a]
		if src, f, ok := uniqueSource(g, a.Name, member); ok && src != model.ScopeRef {
			if sa := g.Activity(src); sa != nil {
				if v == absNonZero {
					an.markMustRun(sa)
				}
				an.constrainMember(sa, f, v, seen)
			}
		}
	}
}

// uniqueSource finds the single data-connector source feeding member
// `to`'s path `member` inside g (to is an activity name or ScopeRef).
// Ambiguous wiring (several maps targeting the member) yields no fact.
func uniqueSource(g *model.Graph, to, member string) (from, fromPath string, ok bool) {
	n := 0
	for _, d := range g.DataInto(to) {
		for _, m := range d.Maps {
			if m.ToPath == member {
				n++
				from, fromPath = d.From, m.FromPath
			}
		}
	}
	return from, fromPath, n == 1
}

// ---- forward pass: may-run / may-dead fixpoint ----

func (an *analysis) forward() {
	for a := range an.mustRun {
		an.mayRun[a] = true
	}
	for changed := true; changed; {
		changed = false
		an.walkGraph(&an.proc.Graph, true, &changed)
	}
}

func (an *analysis) walkGraph(g *model.Graph, scopeRuns bool, changed *bool) {
	for _, a := range g.Activities {
		run, dead := an.evalActivity(g, a, scopeRuns)
		if run && !an.mayRun[a] {
			an.mayRun[a] = true
			*changed = true
		}
		if dead && !an.mayDead[a] {
			an.mayDead[a] = true
			*changed = true
		}
		if a.Block != nil {
			an.walkGraph(a.Block, an.mayRun[a], changed)
		}
	}
}

// evalActivity applies the engine's start semantics in may-form: an AND
// join may start when every incoming connector may deliver true and may
// be dead-path-eliminated when any may deliver false; an OR join may
// start on any true and dies only when all incoming may deliver false.
// A dead source pushes false downstream (dead-path elimination), and a
// source that cannot terminate delivers nothing.
func (an *analysis) evalActivity(g *model.Graph, a *model.Activity, scopeRuns bool) (run, dead bool) {
	inc := g.Incoming(a.Name)
	if len(inc) == 0 {
		return scopeRuns, false
	}
	allTrue, anyTrue, allFalse, anyFalse := true, false, true, false
	for _, c := range inc {
		var v tri
		src := g.Activity(c.From)
		if src != nil && an.mayRun[src] {
			v = an.evalCond(src, c.Condition)
		}
		if src != nil && an.mayDead[src] {
			v.f = true
		}
		allTrue = allTrue && v.t
		anyTrue = anyTrue || v.t
		allFalse = allFalse && v.f
		anyFalse = anyFalse || v.f
	}
	if a.Join == model.JoinOr {
		return anyTrue, allFalse
	}
	return allTrue, anyFalse
}

// evalCond evaluates a connector condition three-valuedly against the
// abstract output container of src. nil means TRUE.
func (an *analysis) evalCond(src *model.Activity, n expr.Node) tri {
	if n == nil {
		return tri{t: true}
	}
	switch x := n.(type) {
	case *expr.Lit:
		if x.Val.Kind() == expr.KindBool {
			b := x.Val.AsBool()
			return tri{t: b, f: !b}
		}
	case *expr.Unary:
		if x.Op == expr.OpNot {
			v := an.evalCond(src, x.X)
			return tri{t: v.f, f: v.t}
		}
	case *expr.Binary:
		switch x.Op {
		case expr.OpAnd:
			l, r := an.evalCond(src, x.L), an.evalCond(src, x.R)
			return tri{t: l.t && r.t, f: l.f || r.f}
		case expr.OpOr:
			l, r := an.evalCond(src, x.L), an.evalCond(src, x.R)
			return tri{t: l.t || r.t, f: l.f && r.f}
		default:
			if member, op, lit, ok := splitCmp(x); ok {
				return cmpTri(an.outVal(src, member, nil), op, lit)
			}
		}
	}
	return tri{t: true, f: true}
}

// splitCmp decomposes a comparison between a single-member reference
// and an integer literal, normalizing the member to the left side.
func splitCmp(b *expr.Binary) (member string, op expr.Op, lit int64, ok bool) {
	switch b.Op {
	case expr.OpEq, expr.OpNe, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe:
	default:
		return "", 0, 0, false
	}
	if r, okL := b.L.(*expr.Ref); okL {
		if l, okR := b.R.(*expr.Lit); okR && l.Val.Kind() == expr.KindInt && len(r.Path) == 1 {
			return r.Path[0], b.Op, l.Val.AsInt(), true
		}
	}
	if l, okL := b.L.(*expr.Lit); okL {
		if r, okR := b.R.(*expr.Ref); okR && l.Val.Kind() == expr.KindInt && len(r.Path) == 1 {
			return r.Path[0], flipCmp(b.Op), l.Val.AsInt(), true
		}
	}
	return "", 0, 0, false
}

// flipCmp mirrors a comparison so the reference reads on the left:
// lit op m  ≡  m flip(op) lit.
func flipCmp(op expr.Op) expr.Op {
	switch op {
	case expr.OpLt:
		return expr.OpGt
	case expr.OpLe:
		return expr.OpGe
	case expr.OpGt:
		return expr.OpLt
	case expr.OpGe:
		return expr.OpLe
	}
	return op // Eq, Ne are symmetric
}

// cmpTri compares an abstract value against an integer literal.
func cmpTri(v absVal, op expr.Op, lit int64) tri {
	switch v {
	case absZero:
		b := cmpInt(0, op, lit)
		return tri{t: b, f: !b}
	case absNonZero:
		if lit == 0 {
			switch op {
			case expr.OpEq:
				return tri{f: true}
			case expr.OpNe:
				return tri{t: true}
			}
		}
	}
	return tri{t: true, f: true}
}

func cmpInt(a int64, op expr.Op, b int64) bool {
	switch op {
	case expr.OpEq:
		return a == b
	case expr.OpNe:
		return a != b
	case expr.OpLt:
		return a < b
	case expr.OpLe:
		return a <= b
	case expr.OpGt:
		return a > b
	case expr.OpGe:
		return a >= b
	}
	return false
}

// ---- abstract data plane ----

// outVal resolves the abstract value of a member of a's output
// container: recorded constraints first, then the activity's exit
// condition (a loop exits only when it holds), then structural
// propagation — block outputs through their inner scope-output maps,
// copy programs through their input wiring. Cycles and everything else
// are unknown.
func (an *analysis) outVal(a *model.Activity, member string, seen map[memberKey]bool) absVal {
	k := memberKey{a, member}
	if v, ok := an.constraint[k]; ok {
		return v
	}
	if seen[k] {
		return absTop
	}
	if seen == nil {
		seen = make(map[memberKey]bool)
	}
	seen[k] = true
	if a.Exit != nil {
		if v := exitVal(a.Exit, member); v != absTop {
			return v
		}
	}
	switch {
	case a.Block != nil:
		return an.scopeOutVal(a.Block, member, seen)
	case an.copyProgs[a.Program]:
		return an.inVal(a, member, seen)
	}
	return absTop
}

// exitVal derives a member's value from an exit condition having held
// at the final iteration (conjunctions of member/literal comparisons).
func exitVal(n expr.Node, member string) absVal {
	b, ok := n.(*expr.Binary)
	if !ok {
		return absTop
	}
	if b.Op == expr.OpAnd {
		if v := exitVal(b.L, member); v != absTop {
			return v
		}
		return exitVal(b.R, member)
	}
	m, op, lit, ok := splitCmp(b)
	if !ok || m != member {
		return absTop
	}
	switch {
	case op == expr.OpEq && lit == 0:
		return absZero
	case op == expr.OpEq && lit != 0, op == expr.OpNe && lit == 0:
		return absNonZero
	}
	return absTop
}

// inVal resolves a member of a's input container through the data
// connectors targeting it.
func (an *analysis) inVal(a *model.Activity, member string, seen map[memberKey]bool) absVal {
	g := an.scopeOf[a]
	src, f, ok := uniqueSource(g, a.Name, member)
	if !ok {
		return absTop
	}
	if src == model.ScopeRef {
		return an.scopeInVal(g, f, seen)
	}
	if sa := g.Activity(src); sa != nil {
		return an.outVal(sa, f, seen)
	}
	return absTop
}

// scopeInVal resolves a member of a scope's input container: the
// process input is unknown; a block's input is the block activity's.
func (an *analysis) scopeInVal(g *model.Graph, member string, seen map[memberKey]bool) absVal {
	pa := an.parent[g]
	if pa == nil {
		return absTop
	}
	return an.inVal(pa, member, seen)
}

// scopeOutVal resolves a member of a scope's output container through
// the scope-output data maps.
func (an *analysis) scopeOutVal(g *model.Graph, member string, seen map[memberKey]bool) absVal {
	src, f, ok := uniqueSource(g, model.ScopeRef, member)
	if !ok {
		return absTop
	}
	if src == model.ScopeRef {
		return an.scopeInVal(g, f, seen)
	}
	if sa := g.Activity(src); sa != nil {
		return an.outVal(sa, f, seen)
	}
	return absTop
}
