package fdl

import (
	"strings"
	"testing"

	"repro/internal/model"
)

const sampleFDL = `
/* A sample definition file exercising every construct. */
STRUCTURE 'Money'
  'amount': FLOAT
  'currency': STRING DEFAULT "USD"
END 'Money'

STRUCTURE 'Order'
  'id': LONG
  'total': 'Money'
  'paid': BOOL
END 'Order'

STRUCTURE 'SagaState'
  'State_1': LONG DEFAULT -1
  'State_2': LONG DEFAULT -1
END 'SagaState'

PROGRAM 'p1'
  DESCRIPTION "first program"
END 'p1'

PROGRAM 'p2'
END 'p2'

PROCESS 'Demo' ( 'Order', 'SagaState' )
  DESCRIPTION "demo process"
  PROGRAM_ACTIVITY 'A' ( 'Order', 'Order' )
    PROGRAM 'p1'
    EXIT WHEN "RC = 0"
  END 'A'
  BLOCK 'B' ( 'Order', 'SagaState' )
    PROGRAM_ACTIVITY 'step1' ( 'Order', 'Order' )
      PROGRAM 'p1'
    END 'step1'
    PROGRAM_ACTIVITY 'step2' ( 'Default', 'Default' )
      PROGRAM 'p2'
    END 'step2'
    CONTROL FROM 'step1' TO 'step2' WHEN "RC = 0"
    DATA FROM SOURCE TO 'step1' MAP 'id' TO 'id'
    DATA FROM 'step1' TO SINK MAP 'RC' TO 'State_1'
  END 'B'
  PROGRAM_ACTIVITY 'C' ( 'Default', 'Default' )
    PROGRAM 'p2'
    START MANUAL WHEN ANY
    DONE_BY ROLE 'clerk'
    NOTIFY AFTER 60 ROLE 'manager'
  END 'C'
  CONTROL FROM 'A' TO 'B' WHEN "RC = 0"
  CONTROL FROM 'A' TO 'C'
  CONTROL FROM 'B' TO 'C' WHEN "State_1 = 0"
  DATA FROM SOURCE TO 'A' MAP 'id' TO 'id'
  DATA FROM 'A' TO 'B' MAP 'id' TO 'id'
  DATA FROM 'B' TO SINK MAP 'State_1' TO 'State_1' MAP 'State_2' TO 'State_2'
END 'Demo'
`

func parseSample(t *testing.T) *File {
	t.Helper()
	f, err := Parse(sampleFDL)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func TestParseSample(t *testing.T) {
	f := parseSample(t)
	if len(f.Programs) != 2 || f.Program("p1") == nil || f.Program("p1").Description != "first program" {
		t.Fatalf("programs: %+v", f.Programs)
	}
	if f.Program("zz") != nil {
		t.Fatal("phantom program")
	}
	proc := f.Process("Demo")
	if proc == nil {
		t.Fatal("process Demo missing")
	}
	if f.Process("zz") != nil {
		t.Fatal("phantom process")
	}
	if proc.InputType != "Order" || proc.OutputType != "SagaState" {
		t.Fatalf("process types: %q %q", proc.InputType, proc.OutputType)
	}
	if len(proc.Activities) != 3 || len(proc.Control) != 3 || len(proc.Data) != 3 {
		t.Fatalf("process shape: %d activities, %d control, %d data",
			len(proc.Activities), len(proc.Control), len(proc.Data))
	}
	b := proc.Graph.Activity("B")
	if b == nil || b.Kind != model.KindBlock || b.Block == nil {
		t.Fatal("block B missing")
	}
	if len(b.Block.Activities) != 2 || len(b.Block.Control) != 1 || len(b.Block.Data) != 2 {
		t.Fatalf("block shape: %+v", b.Block)
	}
	c := proc.Graph.Activity("C")
	if c.Start != model.StartManual || c.Join != model.JoinOr {
		t.Fatalf("C start/join: %v %v", c.Start, c.Join)
	}
	if c.Staff.Role != "clerk" || c.NotifySeconds != 60 || c.NotifyRole != "manager" {
		t.Fatalf("C staff: %+v", c)
	}
	a := proc.Graph.Activity("A")
	if a.Exit == nil || a.Exit.String() != "RC = 0" {
		t.Fatalf("A exit: %v", a.Exit)
	}
	// Default type normalization.
	if proc.Graph.Activity("C").InputType != "" {
		t.Fatal("'Default' not normalized to empty")
	}
	st, ok := f.Types.Lookup("SagaState")
	if !ok || st.Member("State_1").Default.AsInt() != -1 {
		t.Fatal("structure defaults not parsed")
	}
}

func TestCheckSample(t *testing.T) {
	f := parseSample(t)
	if err := f.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	f := parseSample(t)
	text := Export(f)
	f2, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse exported FDL: %v\n%s", err, text)
	}
	if err := f2.Check(); err != nil {
		t.Fatalf("re-parsed file check: %v", err)
	}
	text2 := Export(f2)
	if text != text2 {
		t.Fatalf("export not stable:\n--- first ---\n%s\n--- second ---\n%s", text, text2)
	}
}

func TestCheckCatchesUnregisteredProgram(t *testing.T) {
	src := `
PROCESS 'P' ( 'Default', 'Default' )
  PROGRAM_ACTIVITY 'A' ( 'Default', 'Default' )
    PROGRAM 'ghost'
  END 'A'
END 'P'
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Check(); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("Check = %v, want unregistered program error", err)
	}
}

func TestCheckCatchesUnregisteredProgramInBlock(t *testing.T) {
	src := `
PROCESS 'P' ( 'Default', 'Default' )
  BLOCK 'B' ( 'Default', 'Default' )
    PROGRAM_ACTIVITY 'A' ( 'Default', 'Default' )
      PROGRAM 'ghost'
    END 'A'
  END 'B'
END 'P'
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Check(); err == nil {
		t.Fatal("Check passed with unregistered program in block")
	}
}

func TestCheckDuplicates(t *testing.T) {
	dupProc := `
PROGRAM 'p' END 'p'
PROCESS 'P' ( 'Default', 'Default' )
  PROGRAM_ACTIVITY 'A' ( 'Default', 'Default' ) PROGRAM 'p' END 'A'
END 'P'
PROCESS 'P' ( 'Default', 'Default' )
  PROGRAM_ACTIVITY 'A' ( 'Default', 'Default' ) PROGRAM 'p' END 'A'
END 'P'
`
	f, err := Parse(dupProc)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Check(); err == nil {
		t.Fatal("duplicate process accepted")
	}
	dupProg := `
PROGRAM 'p' END 'p'
PROGRAM 'p' END 'p'
`
	f, err = Parse(dupProg)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Check(); err == nil {
		t.Fatal("duplicate program accepted")
	}
}

func TestSubprocessReference(t *testing.T) {
	src := `
PROGRAM 'p' END 'p'
PROCESS 'Child' ( 'Default', 'Default' )
  PROGRAM_ACTIVITY 'A' ( 'Default', 'Default' ) PROGRAM 'p' END 'A'
END 'Child'
PROCESS 'Parent' ( 'Default', 'Default' )
  PROCESS_ACTIVITY 'S' ( 'Default', 'Default' )
    PROCESS 'Child'
  END 'S'
END 'Parent'
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	// Unknown subprocess must be rejected.
	src2 := strings.Replace(src, "PROCESS 'Child'\n  END 'S'", "PROCESS 'Ghost'\n  END 'S'", 1)
	f2, err := Parse(src2)
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.Check(); err == nil {
		t.Fatal("unknown subprocess accepted")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"WHAT",                                                         // unknown top-level keyword
		"STRUCTURE 'S' 'a': WAT END 'S'",                               // unknown type
		"STRUCTURE 'S' 'a': LONG END 'X'",                              // END mismatch
		"STRUCTURE 'S' 'a' LONG END 'S'",                               // missing colon
		"STRUCTURE 'S' 'a': 'T' DEFAULT 1 END 'S'",                     // default on struct member
		"PROGRAM p END 'p'",                                            // unquoted name
		"PROCESS 'P' ( 'A' 'B' )",                                      // missing comma
		"PROCESS 'P' ( 'A', 'B'",                                       // missing rparen
		"PROCESS 'P' FOO END 'P'",                                      // bad body keyword
		"PROCESS 'P' CONTROL FROM 'a' 'b' END 'P'",                     // missing TO
		"PROCESS 'P' PROGRAM_ACTIVITY 'A' PROCESS 'x' END 'A' END 'P'", // PROCESS on program activity
		"PROCESS 'P' PROGRAM_ACTIVITY 'A' START SOMETIMES END 'A' END 'P'",
		"PROCESS 'P' PROGRAM_ACTIVITY 'A' EXIT WHEN \"RC =\" END 'A' END 'P'", // bad condition
		"PROCESS 'P' DATA FROM SOURCE TO SINK MAP 'a' 'b' END 'P'",            // MAP missing TO
		"PROCESS 'P' PROGRAM_ACTIVITY 'A' DONE_BY TEAM 'x' END 'A' END 'P'",
		"PROCESS 'P' PROGRAM_ACTIVITY 'A' NOTIFY AFTER 'x' ROLE 'r' END 'A' END 'P'",
		"PROCESS 'P' PROGRAM_ACTIVITY 'A' PROGRAM 'p' CONTROL FROM 'a' TO 'b' END 'A' END 'P'", // control in program activity
		"STRUCTURE 'S' 'a': LONG DEFAULT \"x\"",                                                // unterminated + wrong default later
		"/* unterminated comment",
		"'stray name'",
		"PROCESS 'P' ( 'A', 'B' ) END 'Q'", // END mismatch
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestCommentsAndEscapes(t *testing.T) {
	src := `
// line comment
PROGRAM 'has\'quote'
  DESCRIPTION "line1\nline2 \"quoted\" tab\t."
END 'has\'quote' /* trailing */
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p := f.Program("has'quote")
	if p == nil {
		t.Fatal("escaped name not parsed")
	}
	if p.Description != "line1\nline2 \"quoted\" tab\t." {
		t.Fatalf("description: %q", p.Description)
	}
	// Round trip the escapes.
	f2, err := Parse(Export(f))
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if f2.Program("has'quote") == nil || f2.Programs[0].Description != p.Description {
		t.Fatal("escape round trip failed")
	}
}

func TestConditionStringEscapes(t *testing.T) {
	src := `
PROGRAM 'p' END 'p'
PROCESS 'P' ( 'Default', 'Default' )
  PROGRAM_ACTIVITY 'A' ( 'Default', 'Default' )
    PROGRAM 'p'
  END 'A'
  PROGRAM_ACTIVITY 'B' ( 'Default', 'Default' )
    PROGRAM 'p'
  END 'B'
  CONTROL FROM 'A' TO 'B' WHEN "RC = 0"
END 'P'
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Check(); err != nil {
		t.Fatal(err)
	}
	out := Export(f)
	if !strings.Contains(out, `WHEN "RC = 0"`) {
		t.Fatalf("condition not exported: %s", out)
	}
}

func TestFloatDefaults(t *testing.T) {
	src := `
STRUCTURE 'F'
  'rate': FLOAT DEFAULT 2.5
  'neg':  FLOAT DEFAULT -0.125
  'whole': FLOAT DEFAULT 3
END 'F'
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := f.Types.Lookup("F")
	if st.Member("rate").Default.AsFloat() != 2.5 || st.Member("neg").Default.AsFloat() != -0.125 {
		t.Fatalf("float defaults: %+v", st.Members)
	}
	if st.Member("whole").Default.AsFloat() != 3 {
		t.Fatal("integral float default")
	}
	// Round trip.
	f2, err := Parse(Export(f))
	if err != nil {
		t.Fatal(err)
	}
	st2, _ := f2.Types.Lookup("F")
	if st2.Member("rate").Default.AsFloat() != 2.5 || st2.Member("neg").Default.AsFloat() != -0.125 {
		t.Fatal("float round trip")
	}
	// Float default on a LONG member is rejected.
	if _, err := Parse("STRUCTURE 'G' 'n': LONG DEFAULT 2.5 END 'G'"); err == nil {
		t.Fatal("float default on LONG accepted")
	}
}

func TestMoreParsePaths(t *testing.T) {
	// VERSION clause, boolean defaults, DONE_BY PERSON and block loop exit.
	src := `
STRUCTURE 'Flags'
  'on': BOOL DEFAULT TRUE
  'off': BOOL DEFAULT FALSE
END 'Flags'
PROGRAM 'p' END 'p'
PROCESS 'V' ( 'Default', 'Default' )
  DESCRIPTION "versioned"
  VERSION 3
  PROGRAM_ACTIVITY 'A' ( 'Default', 'Flags' )
    PROGRAM 'p'
    START AUTOMATIC WHEN ALL
    DONE_BY PERSON 'alice'
  END 'A'
  BLOCK 'L' ( 'Default', 'Flags' )
    PROGRAM_ACTIVITY 'inner' ( 'Default', 'Flags' )
      PROGRAM 'p'
    END 'inner'
    DATA FROM 'inner' TO SINK MAP 'on' TO 'on'
  END 'L'
  CONTROL FROM 'A' TO 'L' WHEN "RC = 0"
END 'V'
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	proc := f.Process("V")
	if proc.Version != 3 {
		t.Fatalf("version = %d", proc.Version)
	}
	if proc.Graph.Activity("A").Staff.Person != "alice" {
		t.Fatal("DONE_BY PERSON lost")
	}
	st, _ := f.Types.Lookup("Flags")
	if !st.Member("on").Default.AsBool() || st.Member("off").Default.IsNull() == true && false {
		t.Fatalf("bool defaults: %+v", st.Members)
	}
	// Round trip preserves version and staff.
	f2, err := Parse(Export(f))
	if err != nil {
		t.Fatal(err)
	}
	if f2.Process("V").Version != 3 || f2.Process("V").Graph.Activity("A").Staff.Person != "alice" {
		t.Fatal("round trip lost clauses")
	}
	// Error type formats a line number.
	perr := &Error{Line: 7, Msg: "boom"}
	if !strings.Contains(perr.Error(), "line 7") {
		t.Fatal("Error format")
	}
}

func TestMoreParseErrors(t *testing.T) {
	bad := []string{
		"PROCESS 'P' ( 'A', 'B' ) VERSION 'x' END 'P'",                               // version wants int
		"PROCESS 'P' DATA FROM 'a' TO 'b' MAP 'x' TO END 'P'",                        // missing target path
		"PROCESS 'P' DATA FROM TO 'b' END 'P'",                                       // missing source
		"PROCESS 'P' DATA FROM 'a' TO END 'P'",                                       // missing target
		"PROCESS 'P' PROGRAM_ACTIVITY 'A' ( 'X' ) END 'A' END 'P'",                   // one-type parens
		"PROCESS 'P' PROCESS_ACTIVITY 'A' PROGRAM 'x' END 'A' END 'P'",               // PROGRAM on process activity
		"PROCESS 'P' BLOCK 'B' PROGRAM 'x' END 'B' END 'P'",                          // PROGRAM on block
		"PROCESS 'P' PROGRAM_ACTIVITY 'A' START MANUAL WHEN MAYBE END 'A' END 'P'",   // bad join
		"PROCESS 'P' PROGRAM_ACTIVITY 'A' NOTIFY AFTER 5 PERSON 'x' END 'A' END 'P'", // notify wants ROLE
		"STRUCTURE 'S' 'a': BOOL DEFAULT 3 END 'S'",                                  // kind mismatch via registry
		"STRUCTURE 'S' 'a': LONG DEFAULT END 'S'",                                    // missing literal
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}
