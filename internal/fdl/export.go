package fdl

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/model"
)

// Export renders the file in canonical FDL text. The output re-parses to an
// equivalent File (stable round trip).
func Export(f *File) string {
	var sb strings.Builder
	for _, st := range f.Types.All() {
		exportStructure(&sb, st)
	}
	for _, prog := range f.Programs {
		fmt.Fprintf(&sb, "PROGRAM %s\n", quoteName(prog.Name))
		if prog.Description != "" {
			fmt.Fprintf(&sb, "  DESCRIPTION %s\n", quoteString(prog.Description))
		}
		fmt.Fprintf(&sb, "END %s\n\n", quoteName(prog.Name))
	}
	for _, proc := range f.Processes {
		exportProcess(&sb, proc)
	}
	return sb.String()
}

func exportStructure(sb *strings.Builder, st *model.StructType) {
	fmt.Fprintf(sb, "STRUCTURE %s\n", quoteName(st.Name))
	for i := range st.Members {
		m := &st.Members[i]
		if m.IsStruct() {
			fmt.Fprintf(sb, "  %s: %s\n", quoteName(m.Name), quoteName(m.Struct))
			continue
		}
		fmt.Fprintf(sb, "  %s: %s", quoteName(m.Name), m.Basic)
		if !m.Default.IsNull() && !m.Default.Equal(expr.ZeroOf(m.Basic.ValueKind())) {
			fmt.Fprintf(sb, " DEFAULT %s", literal(m.Default))
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(sb, "END %s\n\n", quoteName(st.Name))
}

func exportProcess(sb *strings.Builder, p *model.Process) {
	fmt.Fprintf(sb, "PROCESS %s ( %s, %s )\n", quoteName(p.Name), quoteName(p.In()), quoteName(p.Out()))
	if p.Description != "" {
		fmt.Fprintf(sb, "  DESCRIPTION %s\n", quoteString(p.Description))
	}
	if p.Version != 1 {
		fmt.Fprintf(sb, "  VERSION %d\n", p.Version)
	}
	exportGraph(sb, &p.Graph, 1)
	fmt.Fprintf(sb, "END %s\n\n", quoteName(p.Name))
}

func exportGraph(sb *strings.Builder, g *model.Graph, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, a := range g.Activities {
		exportActivity(sb, a, depth)
	}
	for _, c := range g.Control {
		fmt.Fprintf(sb, "%sCONTROL FROM %s TO %s", ind, quoteName(c.From), quoteName(c.To))
		if c.Condition != nil {
			fmt.Fprintf(sb, " WHEN %s", quoteString(c.Condition.String()))
		}
		sb.WriteByte('\n')
	}
	for _, d := range g.Data {
		fmt.Fprintf(sb, "%sDATA FROM %s TO %s", ind, endpoint(d.From, "SOURCE"), endpoint(d.To, "SINK"))
		for _, m := range d.Maps {
			fmt.Fprintf(sb, " MAP %s TO %s", quoteName(m.FromPath), quoteName(m.ToPath))
		}
		sb.WriteByte('\n')
	}
}

func exportActivity(sb *strings.Builder, a *model.Activity, depth int) {
	ind := strings.Repeat("  ", depth)
	fmt.Fprintf(sb, "%s%s %s ( %s, %s )\n", ind, a.Kind, quoteName(a.Name), quoteName(a.In()), quoteName(a.Out()))
	in2 := ind + "  "
	if a.Description != "" {
		fmt.Fprintf(sb, "%sDESCRIPTION %s\n", in2, quoteString(a.Description))
	}
	switch a.Kind {
	case model.KindProgram:
		fmt.Fprintf(sb, "%sPROGRAM %s\n", in2, quoteName(a.Program))
	case model.KindProcess:
		fmt.Fprintf(sb, "%sPROCESS %s\n", in2, quoteName(a.Subprocess))
	}
	if a.Start != model.StartAutomatic || a.Join != model.JoinAnd {
		join := "ALL"
		if a.Join == model.JoinOr {
			join = "ANY"
		}
		fmt.Fprintf(sb, "%sSTART %s WHEN %s\n", in2, a.Start, join)
	}
	if a.Exit != nil {
		fmt.Fprintf(sb, "%sEXIT WHEN %s\n", in2, quoteString(a.Exit.String()))
	}
	if a.Staff.Role != "" {
		fmt.Fprintf(sb, "%sDONE_BY ROLE %s\n", in2, quoteName(a.Staff.Role))
	}
	if a.Staff.Person != "" {
		fmt.Fprintf(sb, "%sDONE_BY PERSON %s\n", in2, quoteName(a.Staff.Person))
	}
	if a.NotifySeconds > 0 {
		fmt.Fprintf(sb, "%sNOTIFY AFTER %d ROLE %s\n", in2, a.NotifySeconds, quoteName(a.NotifyRole))
	}
	if a.Kind == model.KindBlock && a.Block != nil {
		exportGraph(sb, a.Block, depth+1)
	}
	fmt.Fprintf(sb, "%sEND %s\n", ind, quoteName(a.Name))
}

func endpoint(name, scopeKw string) string {
	if name == model.ScopeRef {
		return scopeKw
	}
	return quoteName(name)
}

func quoteName(s string) string {
	var sb strings.Builder
	sb.WriteByte('\'')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\'', '\\':
			sb.WriteByte('\\')
			sb.WriteByte(c)
		case '\n':
			sb.WriteString("\\n")
		case '\t':
			sb.WriteString("\\t")
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('\'')
	return sb.String()
}

func quoteString(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"', '\\':
			sb.WriteByte('\\')
			sb.WriteByte(c)
		case '\n':
			sb.WriteString("\\n")
		case '\t':
			sb.WriteString("\\t")
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

func literal(v expr.Value) string {
	switch v.Kind() {
	case expr.KindString:
		return quoteString(v.AsString())
	case expr.KindFloat:
		// Decimal notation only — the FDL lexer has no exponent syntax.
		f := v.AsFloat()
		if f == float64(int64(f)) {
			return fmt.Sprintf("%d", int64(f))
		}
		return strconv.FormatFloat(f, 'f', -1, 64)
	default:
		return v.String()
	}
}
