package fdl

import "testing"

// FuzzParse drives the FDL parser with arbitrary input: it must never
// panic, and anything it accepts must survive an export/re-parse round
// trip with a stable second export.
func FuzzParse(f *testing.F) {
	f.Add(sampleFDL)
	f.Add("PROCESS 'P' ( 'Default', 'Default' ) END 'P'")
	f.Add("STRUCTURE 'S' 'a': LONG DEFAULT -1 END 'S'")
	f.Add("PROGRAM 'p' DESCRIPTION \"d\" END 'p'")
	f.Add("/* comment */ // line\nPROGRAM 'p' END 'p'")
	f.Add("PROCESS 'P' BLOCK 'B' ( 'Default', 'Default' ) END 'B' END 'P'")
	f.Add("'")
	f.Add("\"")
	f.Add("PROCESS")
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse(src)
		if err != nil {
			return
		}
		text := Export(file)
		file2, err := Parse(text)
		if err != nil {
			t.Fatalf("accepted input exports unparseable FDL: %v\ninput: %q\nexport: %q", err, src, text)
		}
		if text2 := Export(file2); text2 != text {
			t.Fatalf("export not stable for accepted input %q", src)
		}
	})
}
