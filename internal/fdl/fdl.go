package fdl

import (
	"fmt"

	"repro/internal/model"
)

// Program is a program registration: Figure 5's semantic check requires
// that "a suitable program definition exists" for every program activity.
type Program struct {
	Name        string
	Description string
}

// File is a parsed FDL definition file. All processes in a file share one
// structure-type registry.
type File struct {
	Types     *model.Types
	Programs  []*Program
	Processes []*model.Process
}

// Program returns the registered program with the given name, or nil.
func (f *File) Program(name string) *Program {
	for _, p := range f.Programs {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Process returns the process with the given name, or nil.
func (f *File) Process(name string) *model.Process {
	for _, p := range f.Processes {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Check performs the semantic verification of the import stage of the
// Figure 5 pipeline: structure types are acyclic, every process validates
// structurally, subprocess references resolve within the file, and every
// program activity references a registered program.
func (f *File) Check() error {
	if err := f.Types.CheckCycles(); err != nil {
		return err
	}
	known := make(map[string]bool, len(f.Processes))
	progNames := make(map[string]bool, len(f.Programs))
	for _, p := range f.Programs {
		if p.Name == "" {
			return fmt.Errorf("fdl: program with empty name")
		}
		if progNames[p.Name] {
			return fmt.Errorf("fdl: duplicate program %q", p.Name)
		}
		progNames[p.Name] = true
	}
	for _, p := range f.Processes {
		if known[p.Name] {
			return fmt.Errorf("fdl: duplicate process %q", p.Name)
		}
		known[p.Name] = true
	}
	for _, p := range f.Processes {
		if err := p.Validate(known); err != nil {
			return err
		}
		if err := checkPrograms(&p.Graph, p.Name, progNames); err != nil {
			return err
		}
	}
	return nil
}

func checkPrograms(g *model.Graph, proc string, progs map[string]bool) error {
	for _, a := range g.Activities {
		switch a.Kind {
		case model.KindProgram:
			if !progs[a.Program] {
				return fmt.Errorf("fdl: process %q activity %q references unregistered program %q",
					proc, a.Name, a.Program)
			}
		case model.KindBlock:
			if a.Block != nil {
				if err := checkPrograms(a.Block, proc, progs); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
