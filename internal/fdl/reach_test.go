// Reachability tests live in an external test package so they can
// exercise the analysis against real FMTM translations (fmtm imports
// fdl, so an internal test would cycle).
package fdl_test

import (
	"strings"
	"testing"

	"repro/internal/atm/flexible"
	"repro/internal/atm/saga"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/fdl"
	"repro/internal/fmtm"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/wal"
)

// fig3 translates the paper's figure-3 flexible transaction.
func fig3(t *testing.T) *model.Process {
	t.Helper()
	p, err := fmtm.TranslateFlexible(&flexible.Spec{
		Name: "Fig3",
		Subs: []flexible.SubSpec{
			{Name: "T1", Compensatable: true, Compensation: "C1"},
			{Name: "T2"},
			{Name: "T3", Retriable: true},
			{Name: "T4"},
			{Name: "T5", Compensatable: true, Compensation: "C5"},
			{Name: "T6", Compensatable: true, Compensation: "C6"},
			{Name: "T7", Retriable: true},
			{Name: "T8"},
		},
		Paths: [][]string{
			{"T1", "T2", "T4", "T5", "T6", "T8"},
			{"T1", "T2", "T4", "T7"},
			{"T1", "T2", "T3"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// trip translates the three-step travel saga.
func trip(t *testing.T) *model.Process {
	t.Helper()
	p, err := fmtm.TranslateSaga(&saga.Spec{Name: "Trip", Steps: []saga.Step{
		{Name: "book_flight", Compensation: "cancel_flight"},
		{Name: "book_hotel", Compensation: "cancel_hotel"},
		{Name: "book_car", Compensation: "cancel_car"},
	}}, fmtm.SagaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func reach(t *testing.T, p *model.Process, from string, outcome fdl.Outcome, target string) *fdl.ReachResult {
	t.Helper()
	res, err := fdl.Reach(fdl.ReachQuery{
		Process: p, From: from, Outcome: outcome, Target: target,
		CopyPrograms: []string{fmtm.CopyName},
	})
	if err != nil {
		t.Fatalf("reach(%s %v -> %s): %v", from, outcome, target, err)
	}
	return res
}

// assertPartition checks reachability of every activity of the process
// against an expected reachable set.
func assertPartition(t *testing.T, p *model.Process, from string, outcome fdl.Outcome, reachable ...string) {
	t.Helper()
	want := make(map[string]bool, len(reachable))
	for _, r := range reachable {
		want[r] = true
	}
	for _, path := range fdl.ActivityPaths(p) {
		res := reach(t, p, from, outcome, path)
		if res.Reachable != want[path] {
			t.Errorf("after %s %v: reach(%s) = %v, want %v", from, outcome, path, res.Reachable, want[path])
		}
	}
}

// TestReachFlexibleAbort: after T2 aborts, only the already-run prefix
// and T1's compensation path remain; the whole forward continuation is
// provably dead.
func TestReachFlexibleAbort(t *testing.T) {
	assertPartition(t, fig3(t), "T2", fdl.OutcomeAbort,
		"Blk1", "Blk1.T1", "T2", "Blk1_comp", "Blk1_comp.NOP", "Blk1_comp.C1")
}

// TestReachFlexibleCommit: after T2 commits, T1's compensation can
// never run; everything downstream stays possible.
func TestReachFlexibleCommit(t *testing.T) {
	p := fig3(t)
	var reachable []string
	for _, path := range fdl.ActivityPaths(p) {
		if !strings.HasPrefix(path, "Blk1_comp") {
			reachable = append(reachable, path)
		}
	}
	assertPartition(t, p, "T2", fdl.OutcomeCommit, reachable...)
}

// TestReachFlexibleCorrelated pins the correlation the backward pass
// buys: "T6 ran" implies T5, T4 and T2 all committed, so the
// alternative path T3, the commit continuation T8 and T6's own
// compensation C6 are all provably unreachable after a T6 abort — while
// C5 (compensating the committed T5) and the retriable T7 remain.
func TestReachFlexibleCorrelated(t *testing.T) {
	assertPartition(t, fig3(t), "T6", fdl.OutcomeAbort,
		"Blk1", "Blk1.T1", "T2", "T4", "Blk2", "Blk2.T5", "Blk2.T6",
		"Blk2_comp", "Blk2_comp.NOP", "Blk2_comp.C5", "T7")

	// After T6 commits the picture flips: T8 and (via a possible T8
	// abort) the compensation block stay live, C6 is triggerable only
	// through T8's abort wiring, but T3 is still dead — T4 committed.
	p := fig3(t)
	for _, want := range []struct {
		target string
		ok     bool
	}{
		{"T8", true}, {"Blk2_comp", true}, {"Blk2_comp.C6", true}, {"T7", true},
		{"T3", false}, {"Blk1_comp.C1", false},
	} {
		if res := reach(t, p, "T6", fdl.OutcomeCommit, want.target); res.Reachable != want.ok {
			t.Errorf("after T6 commit: reach(%s) = %v, want %v", want.target, res.Reachable, want.ok)
		}
	}
}

// TestReachSaga checks the translated saga: a committed last step
// proves the compensation block dead; an aborted last step compensates
// exactly the committed prefix (cancel_car itself can never run — there
// is nothing to undo).
func TestReachSaga(t *testing.T) {
	p := trip(t)
	for _, want := range []struct {
		outcome fdl.Outcome
		target  string
		ok      bool
	}{
		{fdl.OutcomeCommit, "Compensation", false},
		{fdl.OutcomeCommit, "Compensation.cancel_flight", false},
		{fdl.OutcomeAbort, "Compensation", true},
		{fdl.OutcomeAbort, "Compensation.cancel_hotel", true},
		{fdl.OutcomeAbort, "Compensation.cancel_flight", true},
		{fdl.OutcomeAbort, "Compensation.cancel_car", false},
	} {
		if res := reach(t, p, "book_car", want.outcome, want.target); res.Reachable != want.ok {
			t.Errorf("after book_car %v: reach(%s) = %v, want %v", want.outcome, want.target, res.Reachable, want.ok)
		}
	}
	// An aborted first step kills the rest of the forward chain.
	for _, target := range []string{"Forward.book_hotel", "Forward.book_car"} {
		if res := reach(t, p, "book_flight", fdl.OutcomeAbort, target); res.Reachable {
			t.Errorf("after book_flight abort: reach(%s) = true, want false", target)
		}
	}
}

// TestReachNoAnchor: with no constraint every activity of both
// translations may run.
func TestReachNoAnchor(t *testing.T) {
	for _, p := range []*model.Process{fig3(t), trip(t)} {
		for _, path := range fdl.ActivityPaths(p) {
			if res := reach(t, p, "", fdl.OutcomeAny, path); !res.Reachable {
				t.Errorf("%s: unconstrained reach(%s) = false", p.Name, path)
			}
		}
	}
}

// TestReachAnchorIsTarget: the anchor ran by definition.
func TestReachAnchorIsTarget(t *testing.T) {
	if res := reach(t, fig3(t), "T2", fdl.OutcomeAbort, "T2"); !res.Reachable {
		t.Error("anchor not reachable from itself")
	}
}

// TestReachResolveErrors: unknown names list the vocabulary, ambiguous
// bare names (both compensation blocks own a NOP) are refused.
func TestReachResolveErrors(t *testing.T) {
	p := fig3(t)
	_, err := fdl.Reach(fdl.ReachQuery{Process: p, Target: "T99"})
	if err == nil || !strings.Contains(err.Error(), "no activity") || !strings.Contains(err.Error(), "Blk2.T6") {
		t.Fatalf("unknown target error = %v", err)
	}
	_, err = fdl.Reach(fdl.ReachQuery{Process: p, Target: "NOP"})
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("ambiguous target error = %v", err)
	}
	// A unique bare name resolves to its dotted path.
	res := reach(t, p, "", fdl.OutcomeAny, "C5")
	if res.Target != "Blk2_comp.C5" {
		t.Fatalf("resolved target = %q, want Blk2_comp.C5", res.Target)
	}
}

// TestReachInfeasible: a contradictory constraint set (the anchor's
// start condition demands RC = 0 AND RC <> 0) and an anchor on an
// unenterable cycle both yield infeasible, not a bogus yes/no.
func TestReachInfeasible(t *testing.T) {
	p := model.NewProcess("P")
	p.Activities = []*model.Activity{
		{Name: "A", Kind: model.KindProgram, Program: "a"},
		{Name: "B", Kind: model.KindProgram, Program: "b"},
		{Name: "X", Kind: model.KindProgram, Program: "x"},
		{Name: "Y", Kind: model.KindProgram, Program: "y"},
	}
	p.Control = []*model.ControlConnector{
		{From: "A", To: "B", Condition: expr.MustParse("RC = 0 AND RC <> 0")},
		{From: "X", To: "Y", Condition: nil},
		{From: "Y", To: "X", Condition: nil},
	}
	res, err := fdl.Reach(fdl.ReachQuery{Process: p, From: "B", Outcome: fdl.OutcomeCommit, Target: "A"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Infeasible || res.Reachable {
		t.Fatalf("contradictory anchor: %+v, want infeasible", res)
	}
	res, err = fdl.Reach(fdl.ReachQuery{Process: p, From: "X", Outcome: fdl.OutcomeAny, Target: "A"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Infeasible || res.Reachable {
		t.Fatalf("unenterable anchor: %+v, want infeasible", res)
	}
}

// enginePath normalizes an engine activity path (Blk2#0/T6) to the
// analysis' dotted form (Blk2.T6).
func enginePath(p string) string {
	segs := strings.Split(p, "/")
	for i, s := range segs {
		if j := strings.IndexByte(s, '#'); j >= 0 {
			segs[i] = s[:j]
		}
	}
	return strings.Join(segs, ".")
}

// runFig3 executes the translated process on a real engine with
// scripted return codes and reports which activities finished.
func runFig3(t *testing.T, rcs map[string]int64) map[string]bool {
	t.Helper()
	p := fig3(t)
	ran := make(map[string]bool)
	e := engine.New(
		engine.WithMetrics(obs.NewRegistry()),
		engine.WithTrailObserver(func(inst *engine.Instance, ev engine.Event) {
			if ev.Kind == engine.EvFinished && ev.Path != "" {
				ran[enginePath(ev.Path)] = true
			}
		}))
	if err := fmtm.RegisterRuntime(e); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "C1", "C5", "C6"} {
		rc := rcs[name]
		if err := e.RegisterProgram(name, engine.ProgramFunc(func(inv *engine.Invocation) error {
			inv.Out.SetRC(rc)
			return nil
		})); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstanceID("Fig3", "wf-reach", nil, wal.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	return ran
}

// TestReachSoundness is the dynamic check of the over-approximation
// contract: every activity that actually finishes in an execution
// satisfying the constraint must be reported reachable. (A "no" from
// the analysis is a proof; a run contradicting one would be a bug.)
func TestReachSoundness(t *testing.T) {
	p := fig3(t)
	scenarios := []struct {
		name    string
		rcs     map[string]int64
		from    string
		outcome fdl.Outcome
	}{
		{"t2-aborts", map[string]int64{"T2": 1}, "T2", fdl.OutcomeAbort},
		{"t6-aborts", map[string]int64{"T6": 1}, "T6", fdl.OutcomeAbort},
		{"all-commit", map[string]int64{}, "T6", fdl.OutcomeCommit},
	}
	for _, sc := range scenarios {
		ran := runFig3(t, sc.rcs)
		if len(ran) == 0 {
			t.Fatalf("%s: nothing ran", sc.name)
		}
		for path := range ran {
			res := reach(t, p, sc.from, sc.outcome, path)
			if !res.Reachable {
				t.Errorf("%s: %s finished in the run but reach says unreachable", sc.name, path)
			}
		}
	}
}
