package fdl

import (
	"strconv"

	"repro/internal/expr"
	"repro/internal/model"
)

// Parse parses an FDL definition file. The returned File has not been
// semantically checked; call File.Check to run the import-stage checks.
func Parse(src string) (*File, error) {
	p := &parser{sc: newScanner(src), file: &File{Types: model.NewTypes()}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	for p.tok.kind != tEOF {
		if p.tok.kind != tKeyword {
			return nil, p.errf("expected STRUCTURE, PROGRAM or PROCESS")
		}
		switch p.tok.text {
		case "STRUCTURE":
			if err := p.parseStructure(); err != nil {
				return nil, err
			}
		case "PROGRAM":
			if err := p.parseProgram(); err != nil {
				return nil, err
			}
		case "PROCESS":
			if err := p.parseProcess(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("unexpected keyword %s at top level", p.tok.text)
		}
	}
	return p.file, nil
}

type parser struct {
	sc   *scanner
	tok  tok
	file *File
}

func (p *parser) errf(format string, args ...any) error {
	return p.sc.errf(p.tok.line, format, args...)
}

func (p *parser) advance() error {
	t, err := p.sc.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expectKeyword(kw string) error {
	if p.tok.kind != tKeyword || p.tok.text != kw {
		return p.errf("expected %s", kw)
	}
	return p.advance()
}

func (p *parser) acceptKeyword(kw string) (bool, error) {
	if p.tok.kind == tKeyword && p.tok.text == kw {
		return true, p.advance()
	}
	return false, nil
}

func (p *parser) expectName() (string, error) {
	if p.tok.kind != tName {
		return "", p.errf("expected a 'quoted name'")
	}
	name := p.tok.text
	return name, p.advance()
}

func (p *parser) expectString() (string, error) {
	if p.tok.kind != tString {
		return "", p.errf("expected a \"quoted string\"")
	}
	s := p.tok.text
	return s, p.advance()
}

func (p *parser) expectInt() (int64, error) {
	if p.tok.kind != tInt {
		return 0, p.errf("expected an integer")
	}
	v, err := strconv.ParseInt(p.tok.text, 10, 64)
	if err != nil {
		return 0, p.errf("invalid integer %q", p.tok.text)
	}
	return v, p.advance()
}

// expectEnd parses "END 'name'" and verifies the name matches.
func (p *parser) expectEnd(name string) error {
	if err := p.expectKeyword("END"); err != nil {
		return err
	}
	got, err := p.expectName()
	if err != nil {
		return err
	}
	if got != name {
		return p.errf("END %q does not match opening %q", got, name)
	}
	return nil
}

// parseCondition parses `WHEN "expr"` having already consumed WHEN.
func (p *parser) parseCondition() (expr.Node, error) {
	src, err := p.expectString()
	if err != nil {
		return nil, err
	}
	n, err := expr.Parse(src)
	if err != nil {
		return nil, p.errf("invalid condition %q: %v", src, err)
	}
	return n, nil
}

func (p *parser) parseStructure() error {
	if err := p.advance(); err != nil { // consume STRUCTURE
		return err
	}
	name, err := p.expectName()
	if err != nil {
		return err
	}
	st := &model.StructType{Name: name}
	for {
		if p.tok.kind == tKeyword && p.tok.text == "END" {
			break
		}
		mname, err := p.expectName()
		if err != nil {
			return err
		}
		if p.tok.kind != tColon {
			return p.errf("expected ':' after member %q", mname)
		}
		if err := p.advance(); err != nil {
			return err
		}
		m := model.Member{Name: mname}
		switch p.tok.kind {
		case tKeyword:
			switch p.tok.text {
			case "LONG":
				m.Basic = model.Long
			case "FLOAT":
				m.Basic = model.Float
			case "STRING":
				m.Basic = model.String
			case "BOOL":
				m.Basic = model.Bool
			default:
				return p.errf("unknown member type %s", p.tok.text)
			}
			if err := p.advance(); err != nil {
				return err
			}
		case tName:
			m.Struct = p.tok.text
			if err := p.advance(); err != nil {
				return err
			}
		default:
			return p.errf("expected a member type")
		}
		if ok, err := p.acceptKeyword("DEFAULT"); err != nil {
			return err
		} else if ok {
			if m.IsStruct() {
				return p.errf("structure member %q cannot have a DEFAULT", mname)
			}
			def, err := p.parseLiteral(m.Basic)
			if err != nil {
				return err
			}
			m.Default = def
		}
		st.Members = append(st.Members, m)
	}
	if err := p.expectEnd(name); err != nil {
		return err
	}
	return p.file.Types.Register(st)
}

func (p *parser) parseLiteral(kind model.BasicKind) (expr.Value, error) {
	switch p.tok.kind {
	case tInt:
		v, err := p.expectInt()
		if err != nil {
			return expr.Null, err
		}
		if kind == model.Float {
			return expr.Float(float64(v)), nil
		}
		return expr.Int(v), nil
	case tFloat:
		text := p.tok.text
		if err := p.advance(); err != nil {
			return expr.Null, err
		}
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return expr.Null, p.errf("invalid float %q", text)
		}
		if kind != model.Float {
			return expr.Null, p.errf("float default %q on a %s member", text, kind)
		}
		return expr.Float(f), nil
	case tString:
		s, err := p.expectString()
		if err != nil {
			return expr.Null, err
		}
		return expr.String_(s), nil
	case tKeyword:
		switch p.tok.text {
		case "TRUE":
			return expr.Bool(true), p.advance()
		case "FALSE":
			return expr.Bool(false), p.advance()
		}
	}
	return expr.Null, p.errf("expected a literal")
}

func (p *parser) parseProgram() error {
	if err := p.advance(); err != nil { // consume PROGRAM
		return err
	}
	name, err := p.expectName()
	if err != nil {
		return err
	}
	prog := &Program{Name: name}
	for {
		if ok, err := p.acceptKeyword("DESCRIPTION"); err != nil {
			return err
		} else if ok {
			d, err := p.expectString()
			if err != nil {
				return err
			}
			prog.Description = d
			continue
		}
		break
	}
	if err := p.expectEnd(name); err != nil {
		return err
	}
	p.file.Programs = append(p.file.Programs, prog)
	return nil
}

// parseContainerTypes parses an optional "( 'In', 'Out' )" pair.
func (p *parser) parseContainerTypes() (in, out string, err error) {
	if p.tok.kind != tLParen {
		return "", "", nil
	}
	if err := p.advance(); err != nil {
		return "", "", err
	}
	in, err = p.expectName()
	if err != nil {
		return "", "", err
	}
	if p.tok.kind != tComma {
		return "", "", p.errf("expected ','")
	}
	if err := p.advance(); err != nil {
		return "", "", err
	}
	out, err = p.expectName()
	if err != nil {
		return "", "", err
	}
	if p.tok.kind != tRParen {
		return "", "", p.errf("expected ')'")
	}
	return in, out, p.advance()
}

func (p *parser) parseProcess() error {
	if err := p.advance(); err != nil { // consume PROCESS
		return err
	}
	name, err := p.expectName()
	if err != nil {
		return err
	}
	proc := &model.Process{Name: name, Version: 1, Types: p.file.Types}
	in, out, err := p.parseContainerTypes()
	if err != nil {
		return err
	}
	proc.InputType = normalizeType(in)
	proc.OutputType = normalizeType(out)
	for {
		if ok, err := p.acceptKeyword("DESCRIPTION"); err != nil {
			return err
		} else if ok {
			d, err := p.expectString()
			if err != nil {
				return err
			}
			proc.Description = d
			continue
		}
		if ok, err := p.acceptKeyword("VERSION"); err != nil {
			return err
		} else if ok {
			v, err := p.expectInt()
			if err != nil {
				return err
			}
			proc.Version = int(v)
			continue
		}
		break
	}
	if err := p.parseGraphBody(&proc.Graph, name); err != nil {
		return err
	}
	p.file.Processes = append(p.file.Processes, proc)
	return nil
}

// parseGraphBody parses activities and connectors until END 'name'.
func (p *parser) parseGraphBody(g *model.Graph, name string) error {
	for {
		if p.tok.kind != tKeyword {
			return p.errf("expected an activity, CONTROL, DATA or END")
		}
		switch p.tok.text {
		case "END":
			return p.expectEnd(name)
		case "PROGRAM_ACTIVITY", "PROCESS_ACTIVITY", "BLOCK":
			a, err := p.parseActivity()
			if err != nil {
				return err
			}
			g.Activities = append(g.Activities, a)
		case "CONTROL":
			c, err := p.parseControl()
			if err != nil {
				return err
			}
			g.Control = append(g.Control, c)
		case "DATA":
			d, err := p.parseData()
			if err != nil {
				return err
			}
			g.Data = append(g.Data, d)
		default:
			return p.errf("unexpected keyword %s in process body", p.tok.text)
		}
	}
}

func (p *parser) parseActivity() (*model.Activity, error) {
	kindKw := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	name, err := p.expectName()
	if err != nil {
		return nil, err
	}
	a := &model.Activity{Name: name}
	switch kindKw {
	case "PROGRAM_ACTIVITY":
		a.Kind = model.KindProgram
	case "PROCESS_ACTIVITY":
		a.Kind = model.KindProcess
	case "BLOCK":
		a.Kind = model.KindBlock
	}
	in, out, err := p.parseContainerTypes()
	if err != nil {
		return nil, err
	}
	a.InputType = normalizeType(in)
	a.OutputType = normalizeType(out)

	if a.Kind == model.KindBlock {
		a.Block = &model.Graph{InputType: a.InputType, OutputType: a.OutputType}
	}

	for {
		if p.tok.kind != tKeyword {
			return nil, p.errf("expected an activity clause or END")
		}
		switch p.tok.text {
		case "END":
			// For blocks, the body may already have been parsed; for all
			// kinds this closes the activity.
			return a, p.expectEnd(name)
		case "DESCRIPTION":
			if err := p.advance(); err != nil {
				return nil, err
			}
			d, err := p.expectString()
			if err != nil {
				return nil, err
			}
			a.Description = d
		case "PROGRAM":
			if a.Kind != model.KindProgram {
				return nil, p.errf("PROGRAM clause on a %s", a.Kind)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			prog, err := p.expectName()
			if err != nil {
				return nil, err
			}
			a.Program = prog
		case "PROCESS":
			if a.Kind != model.KindProcess {
				return nil, p.errf("PROCESS clause on a %s", a.Kind)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			sub, err := p.expectName()
			if err != nil {
				return nil, err
			}
			a.Subprocess = sub
		case "START":
			if err := p.advance(); err != nil {
				return nil, err
			}
			switch {
			case p.tok.kind == tKeyword && p.tok.text == "AUTOMATIC":
				a.Start = model.StartAutomatic
			case p.tok.kind == tKeyword && p.tok.text == "MANUAL":
				a.Start = model.StartManual
			default:
				return nil, p.errf("expected AUTOMATIC or MANUAL")
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			// Optional join: WHEN ALL / WHEN ANY
			if ok, err := p.acceptKeyword("WHEN"); err != nil {
				return nil, err
			} else if ok {
				switch {
				case p.tok.kind == tKeyword && p.tok.text == "ALL":
					a.Join = model.JoinAnd
				case p.tok.kind == tKeyword && p.tok.text == "ANY":
					a.Join = model.JoinOr
				default:
					return nil, p.errf("expected ALL or ANY after START ... WHEN")
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		case "EXIT":
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("WHEN"); err != nil {
				return nil, err
			}
			cond, err := p.parseCondition()
			if err != nil {
				return nil, err
			}
			a.Exit = cond
		case "DONE_BY":
			if err := p.advance(); err != nil {
				return nil, err
			}
			switch {
			case p.tok.kind == tKeyword && p.tok.text == "ROLE":
				if err := p.advance(); err != nil {
					return nil, err
				}
				r, err := p.expectName()
				if err != nil {
					return nil, err
				}
				a.Staff.Role = r
			case p.tok.kind == tKeyword && p.tok.text == "PERSON":
				if err := p.advance(); err != nil {
					return nil, err
				}
				u, err := p.expectName()
				if err != nil {
					return nil, err
				}
				a.Staff.Person = u
			default:
				return nil, p.errf("expected ROLE or PERSON after DONE_BY")
			}
		case "NOTIFY":
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AFTER"); err != nil {
				return nil, err
			}
			secs, err := p.expectInt()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("ROLE"); err != nil {
				return nil, err
			}
			r, err := p.expectName()
			if err != nil {
				return nil, err
			}
			a.NotifySeconds = secs
			a.NotifyRole = r
		case "PROGRAM_ACTIVITY", "PROCESS_ACTIVITY", "BLOCK", "CONTROL", "DATA":
			if a.Kind != model.KindBlock {
				return nil, p.errf("%s inside a non-block activity", p.tok.text)
			}
			// Delegate to graph parsing; it consumes up to and including
			// END 'name'.
			if err := p.parseGraphBody(a.Block, name); err != nil {
				return nil, err
			}
			return a, nil
		default:
			return nil, p.errf("unexpected keyword %s in activity", p.tok.text)
		}
	}
}

func (p *parser) parseControl() (*model.ControlConnector, error) {
	if err := p.advance(); err != nil { // consume CONTROL
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.expectName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TO"); err != nil {
		return nil, err
	}
	to, err := p.expectName()
	if err != nil {
		return nil, err
	}
	c := &model.ControlConnector{From: from, To: to}
	if ok, err := p.acceptKeyword("WHEN"); err != nil {
		return nil, err
	} else if ok {
		cond, err := p.parseCondition()
		if err != nil {
			return nil, err
		}
		c.Condition = cond
	}
	return c, nil
}

// parseData parses: DATA FROM ('name'|SOURCE) TO ('name'|SINK)
// {MAP 'path' TO 'path'}.
func (p *parser) parseData() (*model.DataConnector, error) {
	if err := p.advance(); err != nil { // consume DATA
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	d := &model.DataConnector{}
	switch {
	case p.tok.kind == tKeyword && p.tok.text == "SOURCE":
		d.From = model.ScopeRef
		if err := p.advance(); err != nil {
			return nil, err
		}
	case p.tok.kind == tName:
		d.From = p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
	default:
		return nil, p.errf("expected SOURCE or an activity name")
	}
	if err := p.expectKeyword("TO"); err != nil {
		return nil, err
	}
	switch {
	case p.tok.kind == tKeyword && p.tok.text == "SINK":
		d.To = model.ScopeRef
		if err := p.advance(); err != nil {
			return nil, err
		}
	case p.tok.kind == tName:
		d.To = p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
	default:
		return nil, p.errf("expected SINK or an activity name")
	}
	for {
		ok, err := p.acceptKeyword("MAP")
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		fromPath, err := p.expectName()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("TO"); err != nil {
			return nil, err
		}
		toPath, err := p.expectName()
		if err != nil {
			return nil, err
		}
		d.Maps = append(d.Maps, model.DataMap{FromPath: fromPath, ToPath: toPath})
	}
	return d, nil
}

// normalizeType maps the explicit 'Default' name and "" to the model's
// default container type spelling (empty string).
func normalizeType(name string) string {
	if name == model.DefaultType {
		return ""
	}
	return name
}
