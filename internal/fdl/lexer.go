package fdl

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tEOF tokKind = iota
	tKeyword
	tName   // 'quoted name'
	tString // "quoted string"
	tInt
	tFloat
	tLParen
	tRParen
	tComma
	tColon
)

type tok struct {
	kind tokKind
	text string // keyword (upper-cased), name, string or integer text
	line int
}

// Error is a parse error with a line number.
type Error struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("fdl: line %d: %s", e.Line, e.Msg) }

type scanner struct {
	src  string
	pos  int
	line int
}

func newScanner(src string) *scanner { return &scanner{src: src, line: 1} }

func (s *scanner) errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (s *scanner) next() (tok, error) {
	for {
		// Skip whitespace.
		for s.pos < len(s.src) {
			c := s.src[s.pos]
			if c == '\n' {
				s.line++
				s.pos++
			} else if c == ' ' || c == '\t' || c == '\r' {
				s.pos++
			} else {
				break
			}
		}
		// Skip comments.
		if s.pos+1 < len(s.src) && s.src[s.pos] == '/' && s.src[s.pos+1] == '/' {
			for s.pos < len(s.src) && s.src[s.pos] != '\n' {
				s.pos++
			}
			continue
		}
		if s.pos+1 < len(s.src) && s.src[s.pos] == '/' && s.src[s.pos+1] == '*' {
			start := s.line
			s.pos += 2
			for {
				if s.pos+1 >= len(s.src) {
					return tok{}, s.errf(start, "unterminated block comment")
				}
				if s.src[s.pos] == '\n' {
					s.line++
				}
				if s.src[s.pos] == '*' && s.src[s.pos+1] == '/' {
					s.pos += 2
					break
				}
				s.pos++
			}
			continue
		}
		break
	}
	if s.pos >= len(s.src) {
		return tok{kind: tEOF, line: s.line}, nil
	}
	c := s.src[s.pos]
	switch {
	case c == '(':
		s.pos++
		return tok{kind: tLParen, line: s.line}, nil
	case c == ')':
		s.pos++
		return tok{kind: tRParen, line: s.line}, nil
	case c == ',':
		s.pos++
		return tok{kind: tComma, line: s.line}, nil
	case c == ':':
		s.pos++
		return tok{kind: tColon, line: s.line}, nil
	case c == '\'':
		return s.scanQuoted('\'', tName)
	case c == '"':
		return s.scanQuoted('"', tString)
	case c == '-' || c >= '0' && c <= '9':
		start := s.pos
		s.pos++
		kind := tInt
		for s.pos < len(s.src) {
			d := s.src[s.pos]
			if d >= '0' && d <= '9' {
				s.pos++
				continue
			}
			if d == '.' && kind == tInt && s.pos+1 < len(s.src) &&
				s.src[s.pos+1] >= '0' && s.src[s.pos+1] <= '9' {
				kind = tFloat
				s.pos++
				continue
			}
			break
		}
		return tok{kind: kind, text: s.src[start:s.pos], line: s.line}, nil
	case unicode.IsLetter(rune(c)) || c == '_':
		start := s.pos
		for s.pos < len(s.src) {
			r := rune(s.src[s.pos])
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
				break
			}
			s.pos++
		}
		return tok{kind: tKeyword, text: strings.ToUpper(s.src[start:s.pos]), line: s.line}, nil
	default:
		return tok{}, s.errf(s.line, "unexpected character %q", c)
	}
}

func (s *scanner) scanQuoted(q byte, kind tokKind) (tok, error) {
	startLine := s.line
	s.pos++ // opening quote
	var sb strings.Builder
	for s.pos < len(s.src) {
		c := s.src[s.pos]
		switch c {
		case q:
			s.pos++
			return tok{kind: kind, text: sb.String(), line: startLine}, nil
		case '\\':
			s.pos++
			if s.pos >= len(s.src) {
				return tok{}, s.errf(startLine, "unterminated quoted text")
			}
			esc := s.src[s.pos]
			switch esc {
			case q, '\\':
				sb.WriteByte(esc)
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '"':
				sb.WriteByte('"')
			default:
				return tok{}, s.errf(s.line, "unknown escape \\%c", esc)
			}
			s.pos++
		case '\n':
			return tok{}, s.errf(startLine, "newline in quoted text")
		default:
			sb.WriteByte(c)
			s.pos++
		}
	}
	return tok{}, s.errf(startLine, "unterminated quoted text")
}
