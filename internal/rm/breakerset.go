package rm

import (
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/obs"
)

// BreakerSet builds and tracks one circuit breaker per program name —
// the standard implementation behind engine.WithBreakerFactory. Every
// breaker it creates publishes its state transitions as breaker.* events
// on the bus and maintains the engine.breaker.open gauge (breakers
// currently tripped) and engine.breaker.trips counter; States gives
// /statusz and wftop their per-program state view.
type BreakerSet struct {
	cfg BreakerConfig
	bus *obs.Bus

	mu sync.Mutex
	m  map[string]*Breaker

	open  *obs.Gauge   // engine.breaker.open
	trips *obs.Counter // engine.breaker.trips
}

// NewBreakerSet returns an empty set stamping cfg onto every breaker it
// creates. reg defaults to obs.Default, bus to obs.DefaultBus.
// cfg.OnTransition is overridden by the set's own publication hook.
func NewBreakerSet(cfg BreakerConfig, reg *obs.Registry, bus *obs.Bus) *BreakerSet {
	if reg == nil {
		reg = obs.Default
	}
	if bus == nil {
		bus = obs.DefaultBus
	}
	return &BreakerSet{
		cfg:   cfg,
		bus:   bus,
		m:     make(map[string]*Breaker),
		open:  reg.Gauge("engine.breaker.open"),
		trips: reg.Counter("engine.breaker.trips"),
	}
}

// Factory adapts the set to engine.WithBreakerFactory.
func (s *BreakerSet) Factory() func(program string) engine.Breaker {
	return func(program string) engine.Breaker { return s.For(program) }
}

// For returns the breaker guarding program, creating it on first use.
func (s *BreakerSet) For(program string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.m[program]; ok {
		return b
	}
	cfg := s.cfg
	cfg.OnTransition = func(from, to BreakerState) { s.onTransition(program, from, to) }
	b := NewBreaker(cfg)
	s.m[program] = b
	return b
}

// States snapshots every breaker's current state by program name,
// sorted-key iteration friendly (the map is fresh; callers may range or
// marshal it directly).
func (s *BreakerSet) States() map[string]string {
	s.mu.Lock()
	names := make([]string, 0, len(s.m))
	for name := range s.m {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)
	out := make(map[string]string, len(names))
	for _, name := range names {
		out[name] = s.For(name).State().String()
	}
	return out
}

func (s *BreakerSet) onTransition(program string, from, to BreakerState) {
	var kind string
	switch to {
	case BreakerOpen:
		s.trips.Inc()
		if from == BreakerClosed {
			s.open.Add(1)
		}
		kind = obs.EvBreakerOpen
	case BreakerHalfOpen:
		kind = obs.EvBreakerHalfOpen
	default:
		s.open.Add(-1)
		kind = obs.EvBreakerClose
	}
	if s.bus.Active() {
		s.bus.Publish(obs.Event{Kind: kind, Program: program})
	}
}
