package rm

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/obs"
)

// End-to-end breaker + retry-budget wiring: a failing program trips its
// breaker open after enough recorded failures, the retry budget stops
// the retry storm, later instances fail fast without invoking the
// program, and a healthy probe after the cooldown recloses the breaker.
func TestBreakerSetEngineIntegration(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	reg := obs.NewRegistry()
	bus := obs.NewBus()
	var kinds []string
	detach := bus.Attach(func(ev obs.Event) {
		switch ev.Kind {
		case obs.EvBreakerOpen, obs.EvBreakerHalfOpen, obs.EvBreakerClose, obs.EvRetryExhausted:
			kinds = append(kinds, ev.Kind)
		}
	})
	defer detach()

	set := NewBreakerSet(BreakerConfig{
		Window: 4, FailureRate: 0.5, MinSamples: 4, Cooldown: time.Second, Now: clk.now,
	}, reg, bus)
	budget := engine.NewRetryBudget(3, 0.1)
	e := engine.New(
		engine.WithMetrics(reg), engine.WithBus(bus),
		engine.WithBreakerFactory(set.Factory()),
		engine.WithRetryBudget(budget),
		engine.WithSleep(func(time.Duration) {}),
	)
	var invocations, healthy atomic.Int64
	if err := e.RegisterProgram("flaky", engine.ProgramFunc(func(inv *engine.Invocation) error {
		invocations.Add(1)
		if healthy.Load() == 1 {
			inv.Out.SetRC(0)
			return nil
		}
		return engine.Transient(errors.New("rm down"))
	})); err != nil {
		t.Fatal(err)
	}
	p := model.NewProcess("P")
	p.Activities = append(p.Activities, &model.Activity{
		Name: "A", Kind: model.KindProgram, Program: "flaky",
		Retry: &model.RetryPolicy{MaxAttempts: 20},
	})
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}

	run := func() *engine.Instance {
		t.Helper()
		inst, err := e.CreateInstance("P", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		inst.Start() // failures surface via inst.Err()
		return inst
	}

	// First instance: attempt 1 plus 3 budgeted retries all fail; the 4th
	// recorded failure trips the breaker, and the empty budget forgoes
	// further retries.
	inst := run()
	if inst.Finished() {
		t.Fatal("failing instance finished")
	}
	if got := invocations.Load(); got != 4 {
		t.Fatalf("invocations = %d, want 4 (1 + 3 budgeted retries)", got)
	}
	if got := set.For("flaky").State(); got != BreakerOpen {
		t.Fatalf("breaker state = %v, want open", got)
	}
	if budget.Remaining() != 0 {
		t.Fatalf("budget remaining = %d, want 0", budget.Remaining())
	}

	// Second instance fails fast: the open breaker blocks the attempt, so
	// the program is never invoked, and the cause names the breaker.
	inst2 := run()
	if got := invocations.Load(); got != 4 {
		t.Fatalf("open breaker let an invocation through (%d)", got)
	}
	if err := inst2.Err(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("fast-fail cause = %v, want ErrBreakerOpen", err)
	}

	// RM heals, cooldown elapses: the half-open probe succeeds and the
	// breaker recloses; the instance finishes normally.
	healthy.Store(1)
	clk.advance(2 * time.Second)
	inst3 := run()
	if !inst3.Finished() {
		t.Fatalf("post-recovery instance failed: %v", inst3.Err())
	}
	if got := set.For("flaky").State(); got != BreakerClosed {
		t.Fatalf("breaker state after probe = %v, want closed", got)
	}
	if got := set.States()["flaky"]; got != "closed" {
		t.Fatalf("States() = %q, want closed", got)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["engine.breaker.trips"]; got != 1 {
		t.Fatalf("breaker.trips = %d, want 1", got)
	}
	if g := snap.Gauges["engine.breaker.open"]; g.Value != 0 || g.Max != 1 {
		t.Fatalf("breaker.open gauge = %+v, want value 0 max 1", g)
	}
	if got := snap.Counters["engine.retry.forgone"]; got < 1 {
		t.Fatalf("retry.forgone = %d, want >= 1", got)
	}

	wantOrder := []string{obs.EvRetryExhausted, obs.EvBreakerOpen}
	seen := map[string]bool{}
	for _, k := range kinds {
		seen[k] = true
	}
	for _, k := range append(wantOrder, obs.EvBreakerHalfOpen, obs.EvBreakerClose) {
		if !seen[k] {
			t.Fatalf("event %s never published (got %v)", k, kinds)
		}
	}
}
