package rm

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/model"
	"repro/internal/txdb"
)

func TestInjectorScripts(t *testing.T) {
	inj := NewInjector()
	inj.Script("t1", Abort, Abort, Commit)
	want := []Outcome{Abort, Abort, Commit, Commit, Commit}
	for i, w := range want {
		if got := inj.Decide("t1"); got != w {
			t.Fatalf("attempt %d = %v, want %v", i, got, w)
		}
	}
	if inj.Attempts("t1") != 5 {
		t.Fatalf("attempts = %d", inj.Attempts("t1"))
	}
	// Unscripted names commit.
	if inj.Decide("other") != Commit {
		t.Fatal("unscripted should commit")
	}
}

func TestInjectorAbortAlwaysAndAbortN(t *testing.T) {
	inj := NewInjector()
	inj.AbortAlways("p")
	for i := 0; i < 10; i++ {
		if inj.Decide("p") != Abort {
			t.Fatal("AbortAlways leaked a commit")
		}
	}
	inj.AbortN("r", 3)
	got := []Outcome{inj.Decide("r"), inj.Decide("r"), inj.Decide("r"), inj.Decide("r")}
	if got[0] != Abort || got[1] != Abort || got[2] != Abort || got[3] != Commit {
		t.Fatalf("AbortN sequence: %v", got)
	}
}

func TestRandomDeciderDeterminism(t *testing.T) {
	a := NewRandomDecider(7, 0.5)
	b := NewRandomDecider(7, 0.5)
	var aborts int
	for i := 0; i < 200; i++ {
		oa, ob := a.Decide("x"), b.Decide("x")
		if oa != ob {
			t.Fatal("same seed diverged")
		}
		if oa == Abort {
			aborts++
		}
	}
	if aborts == 0 || aborts == 200 {
		t.Fatalf("aborts = %d, want a mix at p=0.5", aborts)
	}
}

func TestExecCommitAndAbort(t *testing.T) {
	store := txdb.Open("db")
	rec := &Recorder{}
	inj := NewInjector()
	inj.Script("s", Commit, Abort)

	sub := Subtransaction{Name: "s", Store: store, Work: func(tx *txdb.Tx) error {
		return tx.Put("k", "v")
	}}
	// First attempt commits: the write is durable.
	ok, err := Exec(sub, inj, rec)
	if err != nil || !ok {
		t.Fatalf("Exec: %v %v", ok, err)
	}
	if store.Len() != 1 {
		t.Fatal("committed write missing")
	}
	// Second attempt is aborted at commit time: the write is undone.
	sub2 := Subtransaction{Name: "s", Store: store, Work: func(tx *txdb.Tx) error {
		return tx.Put("k2", "v2")
	}}
	ok, err = Exec(sub2, inj, rec)
	if err != nil || ok {
		t.Fatalf("Exec: %v %v, want injected abort", ok, err)
	}
	if store.Len() != 1 {
		t.Fatal("aborted write survived")
	}
	events := rec.Events()
	if len(events) != 2 || events[0].String() != "s:commit" || events[1].String() != "s:abort" {
		t.Fatalf("history: %v", events)
	}
	if got := rec.Committed(); len(got) != 1 || got[0] != "s" {
		t.Fatalf("committed: %v", got)
	}
	rec.Reset()
	if len(rec.Events()) != 0 {
		t.Fatal("reset failed")
	}
}

func TestExecNilStoreAndNilDecider(t *testing.T) {
	ok, err := Exec(Subtransaction{Name: "pure"}, nil, nil)
	if err != nil || !ok {
		t.Fatalf("nil store/decider: %v %v", ok, err)
	}
	inj := NewInjector()
	inj.AbortAlways("pure")
	ok, err = Exec(Subtransaction{Name: "pure"}, inj, nil)
	if err != nil || ok {
		t.Fatalf("nil store with abort: %v %v", ok, err)
	}
}

func TestExecWorkErrorIsInfrastructure(t *testing.T) {
	store := txdb.Open("db")
	boom := errors.New("boom")
	sub := Subtransaction{Name: "s", Store: store, Work: func(tx *txdb.Tx) error { return boom }}
	if _, err := Exec(sub, nil, nil); !errors.Is(err, boom) {
		t.Fatalf("want wrapped work error, got %v", err)
	}
}

func TestExecDeadlockCountsAsAbort(t *testing.T) {
	store := txdb.Open("db")
	rec := &Recorder{}
	sub := Subtransaction{Name: "s", Store: store, Work: func(tx *txdb.Tx) error {
		return fmt.Errorf("wrapped: %w", txdb.ErrDeadlock)
	}}
	ok, err := Exec(sub, nil, rec)
	if err != nil || ok {
		t.Fatalf("deadlock should be a normal abort: %v %v", ok, err)
	}
	if ev := rec.Events(); len(ev) != 1 || ev[0].Kind != EvAbort {
		t.Fatalf("history: %v", ev)
	}
}

func TestProgramAdapter(t *testing.T) {
	store := txdb.Open("db")
	inj := NewInjector()
	inj.Script("work", Abort, Commit)
	rec := &Recorder{}

	e := engine.New()
	subs := []Subtransaction{{Name: "work", Store: store, Work: func(tx *txdb.Tx) error {
		return tx.Put("done", "yes")
	}}}
	if err := RegisterAll(e, subs, inj, rec); err != nil {
		t.Fatal(err)
	}
	p := model.NewProcess("P")
	p.Activities = []*model.Activity{{
		Name: "w", Kind: model.KindProgram, Program: "work",
		Exit: expr.MustParse("RC = 0"), // retry until commit
	}}
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("P", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	if !inst.Finished() {
		t.Fatal("not finished")
	}
	if inj.Attempts("work") != 2 {
		t.Fatalf("attempts = %d, want 2 (abort then commit)", inj.Attempts("work"))
	}
	if store.Len() != 1 {
		t.Fatal("final commit missing")
	}
	ev := rec.Events()
	if len(ev) != 2 || ev[0].Kind != EvAbort || ev[1].Kind != EvCommit {
		t.Fatalf("history: %v", ev)
	}
}
