// Package rm binds transactional units of work (subtransactions of sagas
// and flexible transactions) to the txdb local databases and to engine
// programs, with deterministic failure injection.
//
// The paper's transaction-model semantics are driven entirely by which
// subtransactions commit and which abort; the injector scripts those
// outcomes per subtransaction so every abort scenario in the paper's
// appendix can be produced on demand and reproducibly: abort-always (a
// failed pivot), abort-n-times-then-commit (a retriable subtransaction
// doing real retries), or seeded random outcomes for workload sweeps.
package rm
