package rm

import (
	"repro/internal/engine"
)

// Program adapts a subtransaction to an engine program: the workflow
// activity's return code carries the transactional outcome, RC = 0 for
// commit and RC = 1 for abort — the convention the generated workflow
// processes of §4 condition on.
func Program(sub Subtransaction, dec Decider, rec *Recorder) engine.Program {
	return engine.ProgramFunc(func(inv *engine.Invocation) error {
		committed, err := Exec(sub, dec, rec)
		if err != nil {
			return err
		}
		if committed {
			inv.Out.SetRC(0)
		} else {
			inv.Out.SetRC(1)
		}
		return nil
	})
}

// RegisterAll registers one program per subtransaction under its name.
func RegisterAll(e *engine.Engine, subs []Subtransaction, dec Decider, rec *Recorder) error {
	for _, sub := range subs {
		if err := e.RegisterProgram(sub.Name, Program(sub, dec, rec)); err != nil {
			return err
		}
	}
	return nil
}
