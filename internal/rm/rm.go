package rm

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/txdb"
)

// Outcome is the scripted result of one subtransaction attempt.
type Outcome uint8

// The outcomes.
const (
	Commit Outcome = iota
	Abort
)

// String names the outcome.
func (o Outcome) String() string {
	if o == Abort {
		return "abort"
	}
	return "commit"
}

// Decider chooses the outcome of each attempt of a named subtransaction.
// Implementations must be safe for concurrent use.
type Decider interface {
	Decide(name string) Outcome
}

// Injector is a scripted Decider: each name consumes its outcome list left
// to right and then commits forever. The zero value commits everything.
type Injector struct {
	mu       sync.Mutex
	scripts  map[string][]Outcome
	attempts map[string]int
}

// NewInjector returns an empty injector (everything commits).
func NewInjector() *Injector {
	return &Injector{scripts: make(map[string][]Outcome), attempts: make(map[string]int)}
}

// Script sets the outcome sequence for a subtransaction name, replacing any
// previous script.
func (i *Injector) Script(name string, outcomes ...Outcome) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.scripts[name] = append([]Outcome(nil), outcomes...)
}

// AbortAlways makes every attempt of the name abort — a pivot that fails
// for good.
func (i *Injector) AbortAlways(name string) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.scripts[name] = nil
	i.attempts[name+"\x00always"] = 1 // marker, see Decide
}

// AbortN makes the first n attempts abort and later ones commit — the
// observable behaviour of a retriable subtransaction.
func (i *Injector) AbortN(name string, n int) {
	outcomes := make([]Outcome, n)
	for j := range outcomes {
		outcomes[j] = Abort
	}
	i.Script(name, outcomes...)
}

// Decide implements Decider.
func (i *Injector) Decide(name string) Outcome {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.attempts[name]++
	if i.attempts[name+"\x00always"] > 0 {
		return Abort
	}
	s := i.scripts[name]
	if len(s) == 0 {
		return Commit
	}
	out := s[0]
	i.scripts[name] = s[1:]
	return out
}

// Attempts reports how many times the name was decided.
func (i *Injector) Attempts(name string) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.attempts[name]
}

// RandomDecider aborts each attempt independently with probability P,
// deterministically from the seed.
type RandomDecider struct {
	mu sync.Mutex
	r  *rand.Rand
	P  float64
}

// NewRandomDecider returns a seeded random decider.
func NewRandomDecider(seed int64, p float64) *RandomDecider {
	return &RandomDecider{r: rand.New(rand.NewSource(seed)), P: p}
}

// Decide implements Decider.
func (d *RandomDecider) Decide(string) Outcome {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.r.Float64() < d.P {
		return Abort
	}
	return Commit
}

// EventKind classifies history events.
type EventKind string

// History event kinds.
const (
	EvCommit EventKind = "commit"
	EvAbort  EventKind = "abort"
)

// Event is one entry of the observable execution history: subtransaction
// Name finished with Kind.
type Event struct {
	Name string
	Kind EventKind
}

// String renders "name:commit".
func (e Event) String() string { return e.Name + ":" + string(e.Kind) }

// Recorder collects the execution history of an advanced transaction — the
// sequence the saga/flexible guarantees quantify over. It is safe for
// concurrent use.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// Record appends an event.
func (r *Recorder) Record(name string, kind EventKind) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, Event{Name: name, Kind: kind})
}

// Events returns a copy of the history.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Committed returns the names of subtransactions that committed, in order.
func (r *Recorder) Committed() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, e := range r.events {
		if e.Kind == EvCommit {
			out = append(out, e.Name)
		}
	}
	return out
}

// Reset clears the history.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = nil
}

// Subtransaction is one ACID unit of work against a local database. Work
// runs inside a txdb transaction; the injected outcome then decides whether
// that transaction commits or is aborted at the very end (a failure at
// commit time, the hardest case for the surrounding model). A nil Store
// makes the subtransaction a pure decision point (useful in benchmarks that
// measure coordination cost without storage cost).
type Subtransaction struct {
	Name  string
	Store *txdb.Store
	Work  func(tx *txdb.Tx) error
}

// Exec runs one attempt of the subtransaction: the forward work executes,
// then the decider chooses commit or abort. It reports whether the attempt
// committed; err is reserved for infrastructure failures (including
// unexpected work errors). Deadlock aborts count as aborted attempts, not
// errors — a local database unilaterally aborting is normal behaviour in
// the multidatabase model.
func Exec(sub Subtransaction, dec Decider, rec *Recorder) (bool, error) {
	outcome := Commit
	if dec != nil {
		outcome = dec.Decide(sub.Name)
	}
	committed := false
	if sub.Store == nil {
		committed = outcome == Commit
	} else {
		tx := sub.Store.Begin()
		err := error(nil)
		if sub.Work != nil {
			err = sub.Work(tx)
		}
		switch {
		case err == nil && outcome == Commit:
			if cerr := tx.Commit(); cerr != nil {
				return false, cerr
			}
			committed = true
		case err == nil: // injected abort
			if aerr := tx.Abort(); aerr != nil {
				return false, aerr
			}
		default:
			// Work failed (e.g. deadlock victim): unilateral local abort.
			_ = tx.Abort()
			if !isExpectedAbort(err) {
				return false, fmt.Errorf("rm: subtransaction %s: %w", sub.Name, err)
			}
		}
	}
	if rec != nil {
		kind := EvAbort
		if committed {
			kind = EvCommit
		}
		rec.Record(sub.Name, kind)
	}
	return committed, nil
}

func isExpectedAbort(err error) bool {
	return errors.Is(err, txdb.ErrDeadlock)
}
