package rm

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for deterministic cooldowns.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testBreaker(clk *fakeClock, trace *[]string) *Breaker {
	return NewBreaker(BreakerConfig{
		Window: 4, FailureRate: 0.5, MinSamples: 4, Cooldown: time.Second,
		Now: clk.now,
		OnTransition: func(from, to BreakerState) {
			*trace = append(*trace, from.String()+">"+to.String())
		},
	})
}

func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	var trace []string
	b := testBreaker(clk, &trace)

	// Healthy flow stays closed.
	for i := 0; i < 6; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed Allow: %v", err)
		}
		b.Record(false)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}

	// Two failures in a window of four (rate 0.5) trip it open.
	b.Record(true)
	b.Record(true)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open Allow = %v, want ErrBreakerOpen", err)
	}

	// Cooldown elapses: exactly one probe is admitted.
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second concurrent probe allowed (err=%v)", err)
	}

	// Probe fails: reopen, cooldown restarts.
	b.Record(true)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	clk.advance(time.Second / 2)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("reopened breaker admitted before cooldown")
	}

	// Second probe succeeds: reclose with a clean window (one subsequent
	// failure must not re-trip).
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatalf("state after good probe = %v, want closed", b.State())
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatal("single failure after reclose tripped a supposedly clean window")
	}

	want := []string{
		"closed>open",
		"open>half-open",
		"half-open>open",
		"open>half-open",
		"half-open>closed",
	}
	if len(trace) != len(want) {
		t.Fatalf("transitions = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("transition %d = %s, want %s (all: %v)", i, trace[i], want[i], trace)
		}
	}
}

func TestBreakerMinSamples(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Window: 10, FailureRate: 0.5, MinSamples: 5, Now: clk.now})
	// Early failures below MinSamples never trip, even at 100% rate.
	for i := 0; i < 4; i++ {
		b.Record(true)
	}
	if b.State() != BreakerClosed {
		t.Fatal("breaker tripped below MinSamples")
	}
	b.Record(true)
	if b.State() != BreakerOpen {
		t.Fatal("breaker failed to trip at MinSamples with 100% failures")
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	if err := b.Allow(); err != nil {
		t.Fatalf("zero-config breaker refused: %v", err)
	}
	b.Record(false)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v", got)
	}
	if s := BreakerOpen.String(); s != "open" {
		t.Fatalf("String = %q", s)
	}
}
