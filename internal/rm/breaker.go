package rm

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrBreakerOpen is returned by Breaker.Allow while the breaker is open:
// the resource manager has been failing at a rate that makes another
// immediate invocation pointless, so callers fail fast (and may retry
// later — the engine treats it as a transient error subject to backoff
// and the retry budget).
var ErrBreakerOpen = errors.New("rm: circuit breaker open")

// BreakerState is the classic three-state circuit-breaker automaton.
type BreakerState int

// The breaker states.
const (
	// BreakerClosed admits every invocation (normal operation).
	BreakerClosed BreakerState = iota
	// BreakerOpen fails every invocation fast until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a single probe; its outcome decides between
	// reclosing and reopening.
	BreakerHalfOpen
)

// String names the state as it appears in /statusz and wftop.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// BreakerConfig parameterizes a Breaker. The zero value is usable:
// defaults are filled in by NewBreaker.
type BreakerConfig struct {
	// Window is how many recent outcomes the failure rate is computed
	// over (default 10).
	Window int
	// FailureRate opens the breaker when at least MinSamples outcomes
	// are in the window and the failing fraction reaches this threshold
	// (default 0.5).
	FailureRate float64
	// MinSamples is the minimum outcomes in the window before the rate
	// can trip the breaker (default 5) — a single early failure must not
	// open it.
	MinSamples int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe (default 100ms).
	Cooldown time.Duration
	// Now is the clock (default time.Now); tests inject a fake for
	// deterministic cooldown expiry.
	Now func() time.Time
	// OnTransition, when non-nil, is called (outside the breaker's lock)
	// after every state change — the engine publishes breaker.* events
	// and maintains gauges from it.
	OnTransition func(from, to BreakerState)
}

// Breaker is a per-resource-manager circuit breaker: closed while the RM
// is healthy, open (failing fast with ErrBreakerOpen) once the recent
// failure rate trips it, half-open after a cooldown to let one probe
// through. It protects the fleet two ways: healthy instances stop
// queueing behind invocations that are doomed to time out, and a
// recovering RM sees one probe instead of a thundering herd.
//
// Allow must be called before an invocation and Record with its outcome
// (infrastructure success/failure — a transactional abort with RC != 0
// is a *successful* invocation and must be recorded as success).
// Breaker is safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	outcomes []bool // ring buffer of recent outcomes, true = failure
	next     int
	filled   int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

// NewBreaker returns a closed breaker with cfg's unset fields defaulted.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Window <= 0 {
		cfg.Window = 10
	}
	if cfg.FailureRate <= 0 {
		cfg.FailureRate = 0.5
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 100 * time.Millisecond
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg, outcomes: make([]bool, cfg.Window)}
}

// State reports the current state (advancing open → half-open if the
// cooldown has elapsed, so the report never lags the clock).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	trans, from, to := b.maybeHalfOpenLocked()
	s := b.state
	b.mu.Unlock()
	if trans {
		b.transition(from, to)
	}
	return s
}

// Allow reports whether an invocation may proceed. Closed: always.
// Open: ErrBreakerOpen until the cooldown elapses, at which point the
// breaker turns half-open and admits exactly one probe; further calls
// fail fast until the probe's outcome is recorded.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	trans, from, to := b.maybeHalfOpenLocked()
	var err error
	switch b.state {
	case BreakerClosed:
	case BreakerHalfOpen:
		if b.probing {
			err = ErrBreakerOpen
		} else {
			b.probing = true
		}
	default:
		err = ErrBreakerOpen
	}
	b.mu.Unlock()
	if trans {
		b.transition(from, to)
	}
	return err
}

// Record feeds an invocation's infrastructure outcome back. In the
// half-open state the probe's outcome alone decides: success recloses
// (clearing the window), failure reopens and restarts the cooldown. In
// the closed state a failure can trip the breaker open once the window's
// failure rate reaches the threshold.
func (b *Breaker) Record(failure bool) {
	b.mu.Lock()
	var trans bool
	var from, to BreakerState
	switch b.state {
	case BreakerHalfOpen:
		b.probing = false
		from = BreakerHalfOpen
		if failure {
			b.state = BreakerOpen
			b.openedAt = b.cfg.Now()
			to = BreakerOpen
		} else {
			b.state = BreakerClosed
			b.filled = 0
			b.next = 0
			to = BreakerClosed
		}
		trans = true
	case BreakerClosed:
		b.outcomes[b.next] = failure
		b.next = (b.next + 1) % len(b.outcomes)
		if b.filled < len(b.outcomes) {
			b.filled++
		}
		if failure && b.tripLocked() {
			b.state = BreakerOpen
			b.openedAt = b.cfg.Now()
			trans, from, to = true, BreakerClosed, BreakerOpen
		}
	default:
		// Outcomes of invocations that were already in flight when the
		// breaker opened carry no new information; drop them.
	}
	b.mu.Unlock()
	if trans {
		b.transition(from, to)
	}
}

// tripLocked evaluates the window's failure rate against the threshold.
func (b *Breaker) tripLocked() bool {
	if b.filled < b.cfg.MinSamples {
		return false
	}
	failures := 0
	for i := 0; i < b.filled; i++ {
		if b.outcomes[i] {
			failures++
		}
	}
	return float64(failures)/float64(b.filled) >= b.cfg.FailureRate
}

// maybeHalfOpenLocked advances open → half-open when the cooldown has
// elapsed, reporting the transition for publication after unlock.
func (b *Breaker) maybeHalfOpenLocked() (trans bool, from, to BreakerState) {
	if b.state == BreakerOpen && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.state = BreakerHalfOpen
		b.probing = false
		return true, BreakerOpen, BreakerHalfOpen
	}
	return false, 0, 0
}

func (b *Breaker) transition(from, to BreakerState) {
	if b.cfg.OnTransition != nil {
		b.cfg.OnTransition(from, to)
	}
}
