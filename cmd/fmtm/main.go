// Command fmtm is the Exotica/FMTM pre-processor of Figure 5: it converts
// high-level specifications of advanced transaction models (sagas and
// flexible transactions) into workflow process definitions in FDL.
//
// Usage:
//
//	fmtm [-o out.fdl] [-check] [spec-file]
//
// With no spec-file the specification is read from standard input. -check
// runs the whole pipeline (including FDL re-import and semantic checks)
// without writing output.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/fmtm"
)

func main() {
	out := flag.String("o", "", "write the generated FDL to this file (default: stdout)")
	checkOnly := flag.Bool("check", false, "run all pipeline checks but write nothing")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fmtm [-o out.fdl] [-check] [spec-file]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var src []byte
	var err error
	switch flag.NArg() {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		src, err = os.ReadFile(flag.Arg(0))
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	res, err := fmtm.Pipeline(string(src))
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "fmtm: %d saga(s), %d flexible transaction(s) -> %d process template(s), %d program registration(s)\n",
		len(res.Specs.Sagas), len(res.Specs.Flexible), len(res.File.Processes), len(res.File.Programs))
	if *checkOnly {
		return
	}
	if *out == "" {
		fmt.Print(res.FDL)
		return
	}
	if err := os.WriteFile(*out, []byte(res.FDL), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fmtm: %v\n", err)
	os.Exit(1)
}
