package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/history"
)

// TestSubcommandsMatchRegistry pins the dispatch table to the canonical
// registry in internal/history — the one doclint -xref checks
// OPERATIONS.md recipes against. Drift here would let documented
// one-liners and the binary disagree.
func TestSubcommandsMatchRegistry(t *testing.T) {
	var have []string
	for name := range commands {
		have = append(have, name)
	}
	sort.Strings(have)
	if want := history.Subcommands(); !reflect.DeepEqual(have, want) {
		t.Fatalf("dispatch table %v != history.Subcommands() %v", have, want)
	}
}

// buildCmd compiles one of the repo's commands into dir.
func buildCmd(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/"+name)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", name, err, out)
	}
	return bin
}

// chainFDL is a three-step chain with RC conditions and an abort
// branch, exercising both reach answers and time travel.
const chainFDL = `PROGRAM 'step'
END 'step'
PROGRAM 'cleanup'
END 'cleanup'

PROCESS 'demo' ( 'Default', 'Default' )
  PROGRAM_ACTIVITY 'A' ( 'Default', 'Default' )
    PROGRAM 'step'
  END 'A'
  PROGRAM_ACTIVITY 'B' ( 'Default', 'Default' )
    PROGRAM 'step'
  END 'B'
  PROGRAM_ACTIVITY 'C' ( 'Default', 'Default' )
    PROGRAM 'cleanup'
  END 'C'
  CONTROL FROM 'A' TO 'B' WHEN "RC = 0"
  CONTROL FROM 'A' TO 'C' WHEN "RC <> 0"
END 'demo'
`

func writeFDL(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "demo.fdl")
	if err := os.WriteFile(path, []byte(chainFDL), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}

// TestStateTimeTravel: wfrun leaves a WAL behind; wfquery reconstructs
// the instance at chosen boundaries, including the newest, and refuses
// boundaries past recorded history.
func TestStateTimeTravel(t *testing.T) {
	dir := t.TempDir()
	wfrun := buildCmd(t, dir, "wfrun")
	wfquery := buildCmd(t, dir, "wfquery")
	fdlPath := writeFDL(t, dir)
	walPath := filepath.Join(dir, "run.wal")
	run(t, wfrun, "-wal", walPath, fdlPath)

	out := run(t, wfquery, "state", "-wal", walPath, "-inst", "inst-1", fdlPath)
	for _, want := range []string{"instance inst-1 of demo", "status=finished", "rung=full-replay"} {
		if !strings.Contains(out, want) {
			t.Errorf("state output missing %q:\n%s", want, out)
		}
	}
	// Travel to the first boundary: the instance had exactly one trail
	// event, so it cannot have finished yet.
	out = run(t, wfquery, "state", "-wal", walPath, "-inst", "inst-1", "-at", "1", fdlPath)
	if !strings.Contains(out, "as of boundary 1/") || strings.Contains(out, "status=finished") {
		t.Errorf("boundary-1 state unexpected:\n%s", out)
	}
	// JSON mode round-trips.
	var ans struct {
		Status     string `json:"status"`
		Boundary   int    `json:"boundary"`
		Boundaries int    `json:"boundaries"`
		Source     struct {
			Rung string `json:"Rung"`
		} `json:"source"`
	}
	out = run(t, wfquery, "state", "-wal", walPath, "-inst", "inst-1", "-json", fdlPath)
	if err := json.Unmarshal([]byte(out), &ans); err != nil {
		t.Fatalf("state -json: %v\n%s", err, out)
	}
	if ans.Status != "finished" || ans.Boundary != ans.Boundaries || ans.Boundary < 3 {
		t.Errorf("state -json = %+v", ans)
	}
	// Past-the-end boundaries and unknown instances are runtime errors.
	for _, args := range [][]string{
		{"state", "-wal", walPath, "-inst", "inst-1", "-at", "999", fdlPath},
		{"state", "-wal", walPath, "-inst", "inst-99", fdlPath},
	} {
		cmd := exec.Command(wfquery, args...)
		if err := cmd.Run(); err == nil {
			t.Errorf("%v: expected failure", args)
		} else if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
			t.Errorf("%v: exit = %v, want 1", args, err)
		}
	}
}

// TestStateSharded: one instance of a sharded fleet is located through
// the shard directories without naming its shard.
func TestStateSharded(t *testing.T) {
	dir := t.TempDir()
	wfrun := buildCmd(t, dir, "wfrun")
	wfquery := buildCmd(t, dir, "wfquery")
	fdlPath := writeFDL(t, dir)
	fleetDir := filepath.Join(dir, "fleet")
	run(t, wfrun, "-n", "6", "-shards", "2", "-parallel", "2", "-wal", fleetDir, fdlPath)

	out := run(t, wfquery, "state", "-wal", fleetDir, "-inst", "inst-3", fdlPath)
	if !strings.Contains(out, "instance inst-3 of demo") || !strings.Contains(out, "status=finished") {
		t.Errorf("sharded state output:\n%s", out)
	}
	if !strings.Contains(out, "shards-probed=2") {
		t.Errorf("sharded state did not report shard probes:\n%s", out)
	}
}

// TestTrailExportAggAndTail: a fleet run with -trail-export leaves a
// history/v1 file; agg reports outcomes and failure causes that match
// the run, and tail -from streams the same file through the continuous
// evaluator with identical final counts.
func TestTrailExportAggAndTail(t *testing.T) {
	dir := t.TempDir()
	wfrun := buildCmd(t, dir, "wfrun")
	wfquery := buildCmd(t, dir, "wfquery")
	fdlPath := writeFDL(t, dir)
	trail := filepath.Join(dir, "trail.jsonl")
	// 'step' aborts (RC=1), so every instance takes the A→C branch:
	// the trail carries dead-path eliminations for B plus the cleanup
	// activity's dispatch/finish pairs.
	run(t, wfrun, "-n", "3", "-parallel", "1", "-abort", "step", "-trail-export", trail, fdlPath)
	if _, err := os.Stat(trail); err != nil {
		t.Fatalf("trail export missing: %v", err)
	}
	// The file is schema-stamped.
	raw, err := os.ReadFile(trail)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(raw), "{\"schema\":\"history/v1\"}") {
		t.Fatalf("trail not schema-stamped: %q", strings.SplitN(string(raw), "\n", 2)[0])
	}

	aggOut := run(t, wfquery, "agg", trail)
	if !strings.Contains(aggOut, "(history/v1)") {
		t.Errorf("agg did not report the schema:\n%s", aggOut)
	}
	var agg history.Aggregate
	if err := json.Unmarshal([]byte(run(t, wfquery, "agg", "-json", trail)), &agg); err != nil {
		t.Fatal(err)
	}
	if agg.Started != 3 || agg.Finished != 3 {
		t.Errorf("agg = %+v, want 3 started and finished", agg)
	}
	if agg.Events == 0 || len(agg.Latency) == 0 {
		t.Errorf("agg has no events or latency pairs: %+v", agg)
	}

	// tail -from: the continuous path over the same file agrees on the
	// final aggregate, and -every emits intermediate lines.
	tailOut := run(t, wfquery, "tail", "-from", trail, "-every", "5", "-json")
	lines := strings.Split(strings.TrimSpace(tailOut), "\n")
	if len(lines) < 2 {
		t.Fatalf("tail -every 5 emitted %d lines:\n%s", len(lines), tailOut)
	}
	var last history.Aggregate
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Events != agg.Events || last.Failed != agg.Failed || last.Started != agg.Started {
		t.Errorf("tail final %+v != agg %+v", last, agg)
	}
}

// TestKilledRunLeavesQueryablePrefix is the fatal-path flush contract:
// a fleet run killed mid-flight (forced second-signal exit) still
// leaves a well-formed, schema-stamped trail prefix that wfquery can
// aggregate.
func TestKilledRunLeavesQueryablePrefix(t *testing.T) {
	dir := t.TempDir()
	wfrun := buildCmd(t, dir, "wfrun")
	wfquery := buildCmd(t, dir, "wfquery")
	fdlPath := writeFDL(t, dir)
	trail := filepath.Join(dir, "trail.jsonl")
	cmd := exec.Command(wfrun, "-n", "200000", "-parallel", "1", "-trail-export", trail, fdlPath)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait for the run to produce events, then force-kill it: first
	// signal asks for a drain, the immediate second one takes the
	// forced-exit path, which must still flush the trail writer.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if fi, err := os.Stat(trail); err == nil && fi.Size() > 4096 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("trail export never grew")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cmd.Process.Signal(syscall.SIGINT)
	time.Sleep(50 * time.Millisecond)
	cmd.Process.Signal(syscall.SIGINT)
	err := cmd.Wait()
	if ee, ok := err.(*exec.ExitError); ok {
		// 130 is the forced-exit code; a fast machine may drain first and
		// exit 0 — either way the trail must be queryable below.
		if code := ee.ExitCode(); code != 130 && code != 1 {
			t.Fatalf("wfrun exit = %d, want 130 (forced) or a run result", code)
		}
	}
	var agg history.Aggregate
	if err := json.Unmarshal([]byte(run(t, wfquery, "agg", "-json", trail)), &agg); err != nil {
		t.Fatal(err)
	}
	if agg.Events == 0 || agg.Started == 0 {
		t.Errorf("killed run's trail aggregates to nothing: %+v", agg)
	}
	if agg.Started >= 200000 {
		t.Errorf("run was not killed mid-fleet (started=%d)", agg.Started)
	}
}

// TestReachCLI drives the static query class end to end on FDL with
// both connector polarities.
func TestReachCLI(t *testing.T) {
	dir := t.TempDir()
	wfquery := buildCmd(t, dir, "wfquery")
	fdlPath := writeFDL(t, dir)
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"reach", "-target", "B", fdlPath}, "reach B: reachable"},
		{[]string{"reach", "-after", "A", "-outcome", "abort", "-target", "B", fdlPath}, "reach B: unreachable"},
		{[]string{"reach", "-after", "A", "-outcome", "abort", "-target", "C", fdlPath}, "reach C: reachable"},
		{[]string{"reach", "-after", "A", "-outcome", "commit", "-target", "C", fdlPath}, "reach C: unreachable"},
	}
	for _, c := range cases {
		if out := run(t, wfquery, c.args...); !strings.Contains(out, c.want) {
			t.Errorf("%v: output %q does not contain %q", c.args, out, c.want)
		}
	}
	var res struct {
		Reachable bool   `json:"reachable"`
		Target    string `json:"target"`
	}
	out := run(t, wfquery, "reach", "-after", "A", "-outcome", "abort", "-target", "B", "-json", fdlPath)
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatal(err)
	}
	if res.Reachable || res.Target != "B" {
		t.Errorf("reach -json = %+v", res)
	}
}

// TestUsageErrorsExitTwo pins the exit-code contract shared with wfrun:
// misuse is 2, runtime failure is 1.
func TestUsageErrorsExitTwo(t *testing.T) {
	dir := t.TempDir()
	wfquery := buildCmd(t, dir, "wfquery")
	cases := []struct {
		name   string
		args   []string
		stderr string
	}{
		{"no subcommand", nil, "usage: wfquery"},
		{"unknown subcommand", []string{"frobnicate"}, "unknown command"},
		{"state without wal", []string{"state", "-inst", "x", "f.fdl"}, "state requires -wal"},
		{"state without inst", []string{"state", "-wal", "w", "f.fdl"}, "state requires -inst"},
		{"state without file", []string{"state", "-wal", "w", "-inst", "x"}, "exactly one FDL file"},
		{"agg without file", []string{"agg"}, "exactly one trail file"},
		{"tail without source", []string{"tail"}, "exactly one of -addr or -from"},
		{"tail with both sources", []string{"tail", "-addr", "x", "-from", "y"}, "exactly one of -addr or -from"},
		{"reach without target", []string{"reach", "f.fdl"}, "reach requires -target"},
		{"reach outcome without after", []string{"reach", "-target", "B", "-outcome", "abort", "f.fdl"}, "-outcome requires -after"},
		{"reach bad outcome", []string{"reach", "-target", "B", "-after", "A", "-outcome", "sideways", "f.fdl"}, "unknown outcome"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cmd := exec.Command(wfquery, c.args...)
			var stderr strings.Builder
			cmd.Stderr = &stderr
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("expected exit error, got %v", err)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Errorf("exit = %d, want 2\nstderr: %s", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), c.stderr) {
				t.Errorf("stderr %q missing %q", stderr.String(), c.stderr)
			}
		})
	}
}
