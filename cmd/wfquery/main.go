// Command wfquery queries workflow history: the event-sourced remains a
// run leaves behind — WAL segments, checkpoints, trail exports, flight
// dumps, sharded fleet roots — become answerable questions instead of
// archaeology. It is the read side of the Figure 5 pipeline: wfrun
// writes the history, wfquery interrogates it.
//
// Four query classes, one subcommand each:
//
//	wfquery state -wal DIR -inst wf-0003 -at 17 file.fdl
//
// Time travel: the state of one instance as of trail boundary T (its
// T-th audit-trail event, 1-based; 0 means the newest recorded
// boundary). The instance's records are located through the same
// recovery ladder as wfrun -resume — newest checkpoint plus segment
// tail when the instance is live in it, full history otherwise, shard
// directories probed boundedly first — and replayed by deterministic
// re-navigation with a trail observer capturing the snapshot at T.
// Replay never re-invokes resource managers for recorded outcomes; if a
// torn log ends mid-flight, the registered stub programs halt the
// continuation with an error rather than fabricate history. -full
// forces the full-history baseline (the rung B16 measures against);
// -checkpoint names a separate checkpoint directory, as in wfrun.
//
//	wfquery agg TRAIL.jsonl
//
// Fleet aggregation over a recorded trail (a history/v1 export from
// wfrun -trail-export, a flight/v1 recorder dump, or "-" for stdin):
// instance outcomes, failure causes, compensation rate, overload
// counters, and per-program latency quantiles from dispatch/finished
// event pairs. The counts mirror the engine's metric registry 1:1; the
// E13 soak asserts exact agreement.
//
//	wfquery tail -addr localhost:9090 -every 100
//
// Continuous queries: the same aggregation predicates evaluated
// incrementally over a live /events SSE stream (wfrun -metrics-addr)
// with bounded memory, emitting a running summary every -every events.
// -from FILE streams a recorded trail through the same evaluator.
//
//	wfquery reach -after T6 -outcome abort -target C5 file.fdl
//
// Static reachability over the compiled process graph: can -target ever
// run in an execution where -after terminated with -outcome? The answer
// is a sound over-approximation — "unreachable" is a proof, "reachable"
// is absence of one, "infeasible" means no execution satisfies the
// constraint at all.
//
// Flag misuse exits 2 (usage), runtime failures exit 1, like wfrun.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/fdl"
	"repro/internal/fmtm"
	"repro/internal/history"
	"repro/internal/obs"
)

// commands maps each subcommand to its implementation. The keys must
// equal history.Subcommands() — the canonical registry doclint -xref
// checks OPERATIONS.md recipes against; a unit test pins the agreement.
var commands = map[string]struct {
	run      func(args []string)
	synopsis string
}{
	"agg":   {runAgg, "aggregate a recorded trail (history/v1 or flight/v1 JSONL)"},
	"reach": {runReach, "static reachability over a compiled FDL process"},
	"state": {runState, "time travel: instance state as of a trail boundary"},
	"tail":  {runTail, "continuous aggregation over a live /events SSE stream"},
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: wfquery <command> [-flags] [args]\ncommands:\n")
	for _, name := range history.Subcommands() {
		fmt.Fprintf(os.Stderr, "  %-6s %s\n", name, commands[name].synopsis)
	}
	fmt.Fprintf(os.Stderr, "run 'wfquery <command> -h' for per-command flags\n")
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	c, ok := commands[os.Args[1]]
	if !ok {
		fmt.Fprintf(os.Stderr, "wfquery: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	c.run(os.Args[2:])
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wfquery: %v\n", err)
	os.Exit(1)
}

func usageError(fs *flag.FlagSet, msg string) {
	fmt.Fprintln(os.Stderr, "wfquery: "+msg)
	fs.Usage()
	os.Exit(2)
}

// loadFDL parses and checks the positional FDL file of a subcommand.
func loadFDL(path string) *fdl.File {
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	file, err := fdl.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	if err := file.Check(); err != nil {
		fatal(err)
	}
	if len(file.Processes) == 0 {
		fatal(fmt.Errorf("no processes in %s", path))
	}
	return file
}

// pickProcess resolves -process, defaulting to the file's first.
func pickProcess(file *fdl.File, name string) string {
	if name == "" {
		return file.Processes[0].Name
	}
	if file.Process(name) == nil {
		var names []string
		for _, p := range file.Processes {
			names = append(names, p.Name)
		}
		fatal(fmt.Errorf("no process %q in file (have %s)", name, strings.Join(names, ", ")))
	}
	return name
}

// ---- wfquery state ----

// replayBuilder assembles the history.Builder for time-travel replay:
// process templates from the FDL file, the pass-through runtime for
// translated NOPs, and for every other program a stub that refuses to
// run — recorded outcomes replay from the log, and a torn log's
// continuation halts instead of inventing history.
func replayBuilder(file *fdl.File) history.Builder {
	return func(opts ...engine.Option) (*engine.Engine, error) {
		eopts := append([]engine.Option{
			engine.WithMetrics(obs.NewRegistry()),
			engine.WithBus(obs.NewBus()),
		}, opts...)
		e := engine.New(eopts...)
		for _, prog := range file.Programs {
			if prog.Name == fmtm.CopyName {
				if err := fmtm.RegisterRuntime(e); err != nil {
					return nil, err
				}
				continue
			}
			name := prog.Name
			if err := e.RegisterProgram(name, engine.ProgramFunc(func(*engine.Invocation) error {
				return fmt.Errorf("wfquery: program %s invoked past recorded history", name)
			})); err != nil {
				return nil, err
			}
		}
		if err := fmtm.Install(e, file); err != nil {
			return nil, err
		}
		return e, nil
	}
}

// stateAnswer is the JSON shape of a time-travel answer.
type stateAnswer struct {
	Instance   string            `json:"inst"`
	Process    string            `json:"process"`
	Boundary   int               `json:"boundary"`
	Boundaries int               `json:"boundaries"`
	Status     string            `json:"status"`
	Cause      string            `json:"cause,omitempty"`
	TrailLen   int               `json:"trail_len"`
	Output     map[string]string `json:"output,omitempty"`
	Activities []activityAnswer  `json:"activities"`
	Source     *history.Stats    `json:"source"`
}

type activityAnswer struct {
	Path  string `json:"path"`
	State string `json:"state"`
	Iter  int    `json:"iter,omitempty"`
	Dead  bool   `json:"dead,omitempty"`
}

func runState(args []string) {
	fs := flag.NewFlagSet("wfquery state", flag.ExitOnError)
	walPath := fs.String("wal", "", "WAL file, segment directory, or sharded fleet root of the run (required)")
	ckptDir := fs.String("checkpoint", "", "separate checkpoint directory (wfrun -checkpoint; default: co-located with the segments)")
	full := fs.Bool("full", false, "force the full-history rung: read and demultiplex the whole WAL even when a checkpoint could bound the read")
	inst := fs.String("inst", "", "instance ID to reconstruct (required)")
	at := fs.Int("at", 0, "trail boundary to travel to (1-based; 0 = newest recorded)")
	process := fs.String("process", "", "process template of the instance (default: the file's first process)")
	jsonOut := fs.Bool("json", false, "print the snapshot as JSON")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wfquery state -wal PATH -inst ID [-at K] [-checkpoint DIR] [-full] [-process NAME] [-json] file.fdl\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	switch {
	case fs.NArg() != 1:
		usageError(fs, "state wants exactly one FDL file argument")
	case *walPath == "":
		usageError(fs, "state requires -wal")
	case *inst == "":
		usageError(fs, "state requires -inst")
	case *at < 0:
		usageError(fs, "-at must be >= 0 (1-based boundary; 0 = newest)")
	}
	file := loadFDL(fs.Arg(0))
	pickProcess(file, *process) // validates -process; recovery finds the template by record
	src := &history.Source{WAL: *walPath, Checkpoint: *ckptDir, Full: *full}
	snap, n, stats, err := src.StateAt(replayBuilder(file), *inst, *at)
	if err != nil {
		fatal(err)
	}
	ans := &stateAnswer{
		Instance: snap.ID, Process: snap.Process,
		Boundary: snap.TrailLen, Boundaries: n,
		Status: snap.Status, Cause: snap.Cause, TrailLen: snap.TrailLen,
		Source: stats,
	}
	if len(snap.Output) > 0 {
		ans.Output = make(map[string]string, len(snap.Output))
		for k, v := range snap.Output {
			ans.Output[k] = v.String()
		}
	}
	for _, a := range snap.Activities {
		ans.Activities = append(ans.Activities, activityAnswer{Path: a.Path, State: a.State, Iter: a.Iter, Dead: a.Dead})
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(ans); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("instance %s of %s as of boundary %d/%d: status=%s", ans.Instance, ans.Process, ans.Boundary, ans.Boundaries, ans.Status)
	if ans.Cause != "" {
		fmt.Printf(" cause=%q", ans.Cause)
	}
	fmt.Println()
	fmt.Printf("source: rung=%s records-read=%d replayed=%d", stats.Rung, stats.RecordsRead, stats.RecordsReplayed)
	if stats.Shards > 0 {
		fmt.Printf(" shards-probed=%d", stats.Shards)
	}
	fmt.Println()
	for _, a := range ans.Activities {
		fmt.Printf("  %-30s %s", a.Path, a.State)
		if a.Iter > 0 {
			fmt.Printf(" iter=%d", a.Iter)
		}
		if a.Dead {
			fmt.Print(" dead")
		}
		fmt.Println()
	}
	if len(ans.Output) > 0 {
		keys := make([]string, 0, len(ans.Output))
		for k := range ans.Output {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var parts []string
		for _, k := range keys {
			parts = append(parts, k+"="+ans.Output[k])
		}
		fmt.Printf("output: %s\n", strings.Join(parts, " "))
	}
}

// ---- wfquery agg ----

func runAgg(args []string) {
	fs := flag.NewFlagSet("wfquery agg", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "print the aggregate as JSON")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wfquery agg [-json] TRAIL.jsonl   (\"-\" reads stdin)\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		usageError(fs, "agg wants exactly one trail file argument")
	}
	var s *history.Store
	var err error
	if fs.Arg(0) == "-" {
		s, err = history.Read(os.Stdin)
	} else {
		s, err = history.Load(fs.Arg(0))
	}
	if err != nil {
		fatal(err)
	}
	a := s.Aggregate()
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(a); err != nil {
			fatal(err)
		}
		return
	}
	schema := s.Schema
	if schema == "" {
		schema = "bare JSONL"
	}
	fmt.Printf("trail: %d events (%s)\n", a.Events, schema)
	fmt.Printf("instances: created=%d started=%d finished=%d failed=%d canceled=%d\n",
		a.Created, a.Started, a.Finished, a.Failed, a.Canceled)
	if len(a.Causes) > 0 {
		causes := make([]string, 0, len(a.Causes))
		for c := range a.Causes {
			causes = append(causes, c)
		}
		sort.Strings(causes)
		var parts []string
		for _, c := range causes {
			parts = append(parts, fmt.Sprintf("%q=%d", c, a.Causes[c]))
		}
		fmt.Printf("causes: %s\n", strings.Join(parts, " "))
	}
	fmt.Printf("compensations: %d (rate %.3f)\n", a.Compensations, a.CompensationRate)
	fmt.Printf("overload: retries=%d sheds=%d breaker-trips=%d rebalances=%d\n",
		a.Retries, a.Sheds, a.BreakerTrips, a.Rebalances)
	fmt.Printf("navigation: dead-paths=%d loops=%d\n", a.DeadPaths, a.Loops)
	for _, p := range a.Programs() {
		q := a.Latency[p]
		fmt.Printf("latency %-20s n=%-6d p50=%dns p95=%dns p99=%dns\n", p, q.Count, q.P50, q.P95, q.P99)
	}
}

// ---- wfquery tail ----

func runTail(args []string) {
	fs := flag.NewFlagSet("wfquery tail", flag.ExitOnError)
	addr := fs.String("addr", "", "ops address of a running wfrun (-metrics-addr) to follow via /events SSE")
	from := fs.String("from", "", "stream a recorded trail file through the evaluator instead of a live server")
	every := fs.Int("every", 0, "emit a running aggregate every N events (0 = only the final one)")
	max := fs.Int("max", 0, "stop after N events (0 = until the stream ends)")
	jsonOut := fs.Bool("json", false, "emit aggregates as JSON lines")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wfquery tail (-addr host:port | -from TRAIL.jsonl) [-every n] [-max n] [-json]\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	switch {
	case fs.NArg() != 0:
		usageError(fs, "tail takes no positional arguments")
	case (*addr == "") == (*from == ""):
		usageError(fs, "tail requires exactly one of -addr or -from")
	case *every < 0 || *max < 0:
		usageError(fs, "-every and -max must be >= 0")
	}
	var r io.Reader
	sse := false
	if *addr != "" {
		url := *addr
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		resp, err := http.Get(strings.TrimSuffix(url, "/") + "/events")
		if err != nil {
			fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fatal(fmt.Errorf("/events: %s", resp.Status))
		}
		r, sse = resp.Body, true
	} else {
		f, err := os.Open(*from)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	if err := tailStream(os.Stdout, r, sse, *every, *max, *jsonOut); err != nil {
		fatal(err)
	}
}

// tailStream feeds a line stream — SSE frames or trail JSONL — through
// the continuous evaluator, emitting running aggregates. Memory stays
// bounded regardless of stream length (see history.Continuous).
func tailStream(w io.Writer, r io.Reader, sse bool, every, max int, jsonOut bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	c := history.NewContinuous()
	n, first := 0, true
	emit := func() error {
		a := c.Result()
		if jsonOut {
			b, err := json.Marshal(a)
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, string(b))
			return err
		}
		_, err := fmt.Fprintf(w, "events=%d started=%d finished=%d failed=%d comp-rate=%.3f retries=%d sheds=%d breaker-trips=%d inflight=%d\n",
			a.Events, a.Started, a.Finished, a.Failed, a.CompensationRate, a.Retries, a.Sheds, a.BreakerTrips, c.Inflight())
		return err
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if sse {
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			line = strings.TrimPrefix(line, "data: ")
		}
		if line == "" {
			continue
		}
		if first {
			first = false
			var h struct {
				Schema string `json:"schema"`
			}
			if err := json.Unmarshal([]byte(line), &h); err == nil && h.Schema != "" {
				switch h.Schema {
				case history.Schema, obs.FlightSchema:
					continue
				default:
					return fmt.Errorf("tail: unknown schema %q", h.Schema)
				}
			}
		}
		var ev history.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return fmt.Errorf("tail: event %d: %w", n+1, err)
		}
		c.Feed(ev)
		n++
		if every > 0 && n%every == 0 {
			if err := emit(); err != nil {
				return err
			}
		}
		if max > 0 && n >= max {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if every == 0 || n%every != 0 {
		return emit()
	}
	return nil
}

// ---- wfquery reach ----

func runReach(args []string) {
	fs := flag.NewFlagSet("wfquery reach", flag.ExitOnError)
	process := fs.String("process", "", "process template to analyze (default: the file's first process)")
	target := fs.String("target", "", "activity asked about (dotted path or unique bare name; required)")
	after := fs.String("after", "", "anchor activity: constrain to executions where it ran")
	outcome := fs.String("outcome", "any", "how the anchor terminated: any, commit or abort (requires -after)")
	jsonOut := fs.Bool("json", false, "print the result as JSON")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wfquery reach -target ACT [-after ACT [-outcome commit|abort]] [-process NAME] [-json] file.fdl\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	switch {
	case fs.NArg() != 1:
		usageError(fs, "reach wants exactly one FDL file argument")
	case *target == "":
		usageError(fs, "reach requires -target")
	case *after == "" && *outcome != "any":
		usageError(fs, "-outcome requires -after")
	}
	oc, err := fdl.ParseOutcome(*outcome)
	if err != nil {
		usageError(fs, err.Error())
	}
	file := loadFDL(fs.Arg(0))
	proc := file.Process(pickProcess(file, *process))
	res, err := fdl.Reach(fdl.ReachQuery{
		Process: proc, From: *after, Outcome: oc, Target: *target,
		CopyPrograms: []string{fmtm.CopyName},
	})
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}
	constraint := "unconstrained"
	if res.From != "" {
		constraint = fmt.Sprintf("after %s %s", res.From, *outcome)
	}
	switch {
	case res.Infeasible:
		fmt.Printf("reach %s: infeasible — no execution satisfies %s\n", res.Target, constraint)
	case res.Reachable:
		fmt.Printf("reach %s: reachable (%s)\n", res.Target, constraint)
	default:
		fmt.Printf("reach %s: unreachable (%s) — proof, no such execution exists\n", res.Target, constraint)
	}
}
