// Command wftop is a terminal fleet monitor for a running wfrun: it
// polls the ops server's /statusz endpoint and renders a refreshing
// table of the fleet — instances grouped by state, throughput derived
// from counter deltas between polls, replay/flush/program latency
// quantiles, and event-bus health (published/dropped). When the
// observed run is sharded (wfrun -shards) the engine.shard.NN.* gauges
// appear as a per-shard table — queue depth and active workers with
// their peaks, plus the fleet's rebalance count — with no extra flags.
//
//	wfrun -process travel -n 64 -parallel 8 -metrics-addr :9090 travel.fdl &
//	wftop -addr localhost:9090
//
// When stdout is a terminal each refresh redraws in place (ANSI clear);
// otherwise frames print sequentially, which keeps the output usable in
// pipes and test harnesses. -until-done exits 0 once every instance has
// reached a terminal state ("finished" or "failed"); -timeout bounds the
// total run. Connection errors are retried until -timeout — wftop may
// legitimately start before wfrun's listener is up.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", "localhost:9090", "host:port of a running wfrun's -metrics-addr ops server")
	interval := flag.Duration("interval", 1*time.Second, "poll interval")
	untilDone := flag.Bool("until-done", false, "exit 0 once every instance is in a terminal state")
	timeout := flag.Duration("timeout", 0, "give up after this long (0 = run until interrupted)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wftop [-addr host:port] [-interval d] [-until-done] [-timeout d]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	url := "http://" + *addr + "/statusz"
	client := &http.Client{Timeout: 5 * time.Second}
	inPlace := redrawsInPlace()
	deadline := time.Time{}
	if *timeout > 0 {
		deadline = time.Now().Add(*timeout)
	}

	var prev *obs.Status
	var prevAt time.Time
	frame := 0
	for {
		st, err := fetchStatus(client, url)
		now := time.Now()
		if err != nil {
			// The server may not be up yet (wftop racing wfrun's startup)
			// or may have exited; keep retrying until the deadline.
			fmt.Fprintf(os.Stderr, "wftop: %v\n", err)
		} else {
			frame++
			if inPlace {
				fmt.Print("\x1b[2J\x1b[H")
			} else if frame > 1 {
				fmt.Println(strings.Repeat("-", 72))
			}
			render(os.Stdout, *addr, st, prev, now.Sub(prevAt))
			prev, prevAt = st, now
			if *untilDone && allTerminal(st) {
				return
			}
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			fmt.Fprintln(os.Stderr, "wftop: timeout")
			os.Exit(1)
		}
		time.Sleep(*interval)
	}
}

// redrawsInPlace reports whether stdout is a terminal, where ANSI
// clear-and-home redraws beat sequential frames.
func redrawsInPlace() bool {
	fi, err := os.Stdout.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

func fetchStatus(client *http.Client, url string) (*obs.Status, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	var st obs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("%s: %v", url, err)
	}
	return &st, nil
}

func allTerminal(st *obs.Status) bool {
	if len(st.Instances) == 0 {
		return false
	}
	for _, in := range st.Instances {
		if in.Status != "finished" && in.Status != "failed" && in.Status != "canceled" {
			return false
		}
	}
	return true
}

// maxRows bounds the per-instance table so a large fleet stays readable;
// the States summary above it always covers everything.
const maxRows = 32

// finishedRate is the finished-instances counter delta over the poll
// interval, clamped at zero: when the observed process restarts between
// polls (uptime goes backwards) or its counters reset, the raw delta goes
// negative and a naive rate would display as negative throughput.
func finishedRate(st, prev *obs.Status, sincePrev time.Duration) float64 {
	if st.UptimeNs < prev.UptimeNs {
		return 0 // restarted between polls; prev's counters are a different life
	}
	delta := st.Counters["engine.instances.finished"] - prev.Counters["engine.instances.finished"]
	if delta < 0 {
		return 0
	}
	return float64(delta) / sincePrev.Seconds()
}

// archiveLine renders the archive-tier row, present only when the run
// archives its WAL (wfrun -archive) — keyed off the queue-depth gauge
// the archiver registers. A degraded archive shows up as a growing
// queue, climbing retries and an open breaker; the run itself never
// stalls on it, so the line is the operator's main cue that local
// retention is growing (see OPERATIONS.md "archive degraded").
func archiveLine(st *obs.Status) (string, bool) {
	depth, ok := st.Gauges["wal.archive.queue.depth"]
	if !ok {
		return "", false
	}
	state := "ok"
	if st.Gauges["wal.archive.breaker.open"].Value > 0 {
		state = "DEGRADED (breaker open)"
	} else if st.Counters["wal.archive.retries"] > 0 {
		state = "retrying"
	}
	return fmt.Sprintf("archive %s queued=%d queued-bytes=%d archived=%d retries=%d drops=%d",
		state, depth.Value,
		st.Gauges["wal.archive.queued_bytes"].Value,
		st.Counters["wal.archive.archived"],
		st.Counters["wal.archive.retries"],
		st.Counters["wal.archive.drops"]), true
}

func render(w *os.File, addr string, st, prev *obs.Status, sincePrev time.Duration) {
	fmt.Fprintf(w, "wftop  %s  up %s  bus published=%d dropped=%d subscribers=%d\n",
		addr, (time.Duration(st.UptimeNs) * time.Nanosecond).Round(time.Millisecond),
		st.Bus.Published, st.Bus.Dropped, st.Bus.Subscribers)

	// Fleet summary: instances by state plus finished/sec over the last
	// poll interval (counter delta, not a lifetime average).
	states := make([]string, 0, len(st.States))
	for s := range st.States {
		states = append(states, s)
	}
	sort.Strings(states)
	parts := make([]string, 0, len(states))
	total := 0
	for _, s := range states {
		parts = append(parts, fmt.Sprintf("%s=%d", s, st.States[s]))
		total += st.States[s]
	}
	tput := ""
	if prev != nil && sincePrev > 0 {
		tput = fmt.Sprintf("  %.1f finished/sec", finishedRate(st, prev, sincePrev))
	}
	fmt.Fprintf(w, "fleet  %d instances  %s%s\n", total, strings.Join(parts, " "), tput)
	fmt.Fprintf(w, "queues depth=%d active=%d inflight=%d shed=%d\n",
		st.Gauges["engine.fleet.queue.depth"].Value,
		st.Gauges["engine.fleet.active"].Value,
		st.Gauges["engine.inflight.workers"].Value,
		st.Counters["engine.fleet.shed"])

	// Per-shard columns: present only when the run is sharded (wfrun
	// -shards), keyed off the engine.shard.NN.* gauges the fleet
	// registers per shard.
	if ids := shardIDs(st.Gauges); len(ids) > 0 {
		fmt.Fprintf(w, "shards %d rebalanced=%d\n", len(ids), st.Counters["engine.fleet.rebalanced"])
		fmt.Fprintf(w, "%-10s %8s %8s %8s %8s\n", "SHARD", "QUEUE", "QPEAK", "ACTIVE", "APEAK")
		for _, id := range ids {
			q := st.Gauges[fmt.Sprintf("engine.shard.%02d.queue.depth", id)]
			a := st.Gauges[fmt.Sprintf("engine.shard.%02d.active", id)]
			fmt.Fprintf(w, "shard-%02d   %8d %8d %8d %8d\n", id, q.Value, q.Max, a.Value, a.Max)
		}
	}

	if line, ok := archiveLine(st); ok {
		fmt.Fprintln(w, line)
	}

	// Overload-control line: present only when the run has breakers wired
	// in (-breaker), keyed off the retry-budget gauge the engine mirrors.
	if budget, ok := st.Gauges["engine.retry.budget"]; ok {
		fmt.Fprintf(w, "breaker open=%d trips=%d retry-budget=%d forgone=%d\n",
			st.Gauges["engine.breaker.open"].Value,
			st.Counters["engine.breaker.trips"],
			budget.Value,
			st.Counters["engine.retry.forgone"])
	}
	if len(st.Breakers) > 0 {
		progs := make([]string, 0, len(st.Breakers))
		for p := range st.Breakers {
			progs = append(progs, p)
		}
		sort.Strings(progs)
		states := make([]string, 0, len(progs))
		for _, p := range progs {
			states = append(states, fmt.Sprintf("%s=%s", p, st.Breakers[p]))
		}
		fmt.Fprintf(w, "breakers %s\n", strings.Join(states, " "))
	}

	fmt.Fprintf(w, "\n%-28s %10s %10s %10s %10s\n", "LATENCY", "COUNT", "P50", "P95", "P99")
	names := make([]string, 0, len(st.Latencies))
	for n := range st.Latencies {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		q := st.Latencies[n]
		if strings.HasSuffix(n, "ns") || strings.HasSuffix(n, "duration_ns") {
			fmt.Fprintf(w, "%-28s %10d %10s %10s %10s\n", n, q.Count,
				fmtNs(q.P50), fmtNs(q.P95), fmtNs(q.P99))
		} else {
			fmt.Fprintf(w, "%-28s %10d %10d %10d %10d\n", n, q.Count, q.P50, q.P95, q.P99)
		}
	}

	if len(st.Instances) > 0 {
		fmt.Fprintf(w, "\n%-14s %-16s %-10s %8s  %s\n", "INSTANCE", "PROCESS", "STATUS", "PENDING", "CAUSE")
		rows := st.Instances
		trimmed := 0
		if len(rows) > maxRows {
			trimmed = len(rows) - maxRows
			rows = rows[:maxRows]
		}
		for _, in := range rows {
			fmt.Fprintf(w, "%-14s %-16s %-10s %8d  %s\n",
				in.ID, in.Process, in.Status, in.PendingWork, in.Cause)
		}
		if trimmed > 0 {
			fmt.Fprintf(w, "... and %d more\n", trimmed)
		}
	}
}

// shardIDs extracts the sorted shard indices present in a gauge
// snapshot, recognizing the engine.shard.NN.queue.depth names a sharded
// fleet registers; empty for an unsharded run.
func shardIDs(gauges map[string]obs.GaugeSnapshot) []int {
	var ids []int
	for name := range gauges {
		var id int
		var rest string
		if n, _ := fmt.Sscanf(name, "engine.shard.%d.%s", &id, &rest); n == 2 && rest == "queue.depth" {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// fmtNs renders a nanosecond quantile with a human unit.
func fmtNs(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
