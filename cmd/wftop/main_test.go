package main

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// TestFinishedRateClamps: counter resets and process restarts between
// polls must read as zero throughput, never a negative rate.
func TestFinishedRateClamps(t *testing.T) {
	c := func(n int64) map[string]int64 {
		return map[string]int64{"engine.instances.finished": n}
	}
	sec := time.Second
	prev := &obs.Status{UptimeNs: 100, Counters: c(50)}

	if r := finishedRate(&obs.Status{UptimeNs: 200, Counters: c(60)}, prev, sec); r != 10 {
		t.Fatalf("steady rate = %v, want 10", r)
	}
	// Counter reset without an uptime regression (registry swapped).
	if r := finishedRate(&obs.Status{UptimeNs: 200, Counters: c(3)}, prev, sec); r != 0 {
		t.Fatalf("counter reset rate = %v, want 0", r)
	}
	// Full process restart: uptime goes backwards, counters restart too —
	// even a delta that happens to be positive is from a different life.
	if r := finishedRate(&obs.Status{UptimeNs: 5, Counters: c(70)}, prev, sec); r != 0 {
		t.Fatalf("restart rate = %v, want 0", r)
	}
	if r := finishedRate(&obs.Status{UptimeNs: 200, Counters: c(50)}, prev, sec); r != 0 {
		t.Fatalf("idle rate = %v, want 0", r)
	}
}
