package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestShardIDs: the shard table keys off the engine.shard.NN.queue.depth
// gauges a sharded fleet registers — sorted by index, deaf to the other
// shard gauges and to unsharded runs.
func TestShardIDs(t *testing.T) {
	g := map[string]obs.GaugeSnapshot{
		"engine.shard.02.queue.depth": {Value: 1},
		"engine.shard.00.queue.depth": {Value: 0},
		"engine.shard.01.queue.depth": {Value: 3},
		"engine.shard.01.active":      {Value: 2},
		"engine.fleet.queue.depth":    {Value: 4},
	}
	ids := shardIDs(g)
	if len(ids) != 3 || ids[0] != 0 || ids[1] != 1 || ids[2] != 2 {
		t.Fatalf("shardIDs = %v, want [0 1 2]", ids)
	}
	if ids := shardIDs(map[string]obs.GaugeSnapshot{"engine.queue.depth": {}}); len(ids) != 0 {
		t.Fatalf("unsharded run produced shard rows: %v", ids)
	}
}

// TestArchiveLine: the archive row appears only when the archiver's
// queue-depth gauge exists, and its state escalates ok → retrying →
// DEGRADED as retries accumulate and the breaker opens.
func TestArchiveLine(t *testing.T) {
	if _, ok := archiveLine(&obs.Status{
		Gauges:   map[string]obs.GaugeSnapshot{"engine.fleet.queue.depth": {}},
		Counters: map[string]int64{},
	}); ok {
		t.Fatal("archive line rendered for a run with no archiver")
	}
	st := &obs.Status{
		Gauges: map[string]obs.GaugeSnapshot{
			"wal.archive.queue.depth":  {Value: 2},
			"wal.archive.queued_bytes": {Value: 512},
		},
		Counters: map[string]int64{"wal.archive.archived": 7},
	}
	line, ok := archiveLine(st)
	if !ok || line != "archive ok queued=2 queued-bytes=512 archived=7 retries=0 drops=0" {
		t.Fatalf("healthy line = %q ok=%v", line, ok)
	}
	st.Counters["wal.archive.retries"] = 3
	if line, _ := archiveLine(st); !strings.HasPrefix(line, "archive retrying ") {
		t.Fatalf("retrying line = %q", line)
	}
	st.Gauges["wal.archive.breaker.open"] = obs.GaugeSnapshot{Value: 1}
	if line, _ := archiveLine(st); !strings.HasPrefix(line, "archive DEGRADED (breaker open) ") {
		t.Fatalf("degraded line = %q", line)
	}
}

// TestFinishedRateClamps: counter resets and process restarts between
// polls must read as zero throughput, never a negative rate.
func TestFinishedRateClamps(t *testing.T) {
	c := func(n int64) map[string]int64 {
		return map[string]int64{"engine.instances.finished": n}
	}
	sec := time.Second
	prev := &obs.Status{UptimeNs: 100, Counters: c(50)}

	if r := finishedRate(&obs.Status{UptimeNs: 200, Counters: c(60)}, prev, sec); r != 10 {
		t.Fatalf("steady rate = %v, want 10", r)
	}
	// Counter reset without an uptime regression (registry swapped).
	if r := finishedRate(&obs.Status{UptimeNs: 200, Counters: c(3)}, prev, sec); r != 0 {
		t.Fatalf("counter reset rate = %v, want 0", r)
	}
	// Full process restart: uptime goes backwards, counters restart too —
	// even a delta that happens to be positive is from a different life.
	if r := finishedRate(&obs.Status{UptimeNs: 5, Counters: c(70)}, prev, sec); r != 0 {
		t.Fatalf("restart rate = %v, want 0", r)
	}
	if r := finishedRate(&obs.Status{UptimeNs: 200, Counters: c(50)}, prev, sec); r != 0 {
		t.Fatalf("idle rate = %v, want 0", r)
	}
}
