// Command doclint is the repository's documentation linter, run by the
// CI docs job. It has three checks, all standard library only:
//
//	doclint -md .                         # relative markdown links resolve
//	doclint -xref .                       # DESIGN.md index <-> EXPERIMENTS.md agree
//	doclint internal/wal internal/engine  # exported symbols have doc comments
//
// The -md check walks the tree for *.md files and verifies that every
// relative link target exists (external http(s)/mailto links and pure
// #anchors are skipped; a trailing #fragment is stripped before the
// check). The package check parses each listed directory with go/doc and
// requires a package comment plus a doc comment on every exported
// package-level type, function, method, and const/var group — the same
// contract go vet's stdlib analyzers assume but do not enforce.
//
// The -xref check keeps the two experiment documents from drifting: every
// measurement table (B1, B2, ...) and correctness experiment / soak (E1,
// E2, ...) indexed in DESIGN.md's experiment-index table must be
// mentioned in EXPERIMENTS.md, and every B/E identifier EXPERIMENTS.md
// mentions (ranges like "E1–E10" are expanded) must have an index row in
// DESIGN.md — an experiment without an index row is undocumented, an
// index row without a mention is unmeasured.
//
// When the -xref directory has an OPERATIONS.md, the check also
// cross-references its wfquery recipes against the CLI's registered
// subcommands (history.Subcommands(), the same registry cmd/wfquery
// dispatches from): every `wfquery <sub>` mentioned in code spans or
// fenced blocks must name a registered subcommand, and every registered
// subcommand must have at least one documented recipe. Drift here means
// the runbook's copy-pasteable one-liners would not run — it exits 2
// (hard error), not 1.
//
// Exit status: 0 clean, 1 findings (each printed as file:line: message),
// 2 usage or parse errors — or documented wfquery recipes drifting from
// the binary's registered subcommands.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/history"
)

func main() {
	mdRoot := flag.String("md", "", "walk this directory and check relative links in every *.md file")
	xrefRoot := flag.String("xref", "", "cross-check the B/E experiment identifiers of DESIGN.md and EXPERIMENTS.md in this directory")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: doclint [-md dir] [-xref dir] [package-dir]...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *mdRoot == "" && *xrefRoot == "" && flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	findings := 0
	report := func(pos, msg string) {
		fmt.Printf("%s: %s\n", pos, msg)
		findings++
	}

	if *mdRoot != "" {
		if err := checkMarkdown(*mdRoot, report); err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
	}
	drift := 0
	if *xrefRoot != "" {
		if err := checkXref(*xrefRoot, report); err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		if err := checkWfqueryXref(*xrefRoot, func(pos, msg string) {
			report(pos, msg)
			drift++
		}); err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
	}
	for _, dir := range flag.Args() {
		if err := checkDocComments(dir, report); err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
	}
	if findings > 0 {
		fmt.Printf("doclint: %d finding(s)\n", findings)
		if drift > 0 {
			// Subcommand drift means documented recipes would not run —
			// a registry disagreement, not a doc typo.
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// mdLink matches inline markdown links and images: [text](target) with an
// optional "title". Targets with spaces are not used in this repository.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// checkMarkdown walks root for *.md files (skipping VCS metadata) and
// verifies every relative link target exists on disk.
func checkMarkdown(root string, report func(pos, msg string)) error {
	return filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		lines := strings.Split(string(data), "\n")
		for i, line := range lines {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") ||
					strings.HasPrefix(target, "mailto:") ||
					strings.HasPrefix(target, "#") {
					continue
				}
				if idx := strings.IndexByte(target, '#'); idx >= 0 {
					target = target[:idx]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(path), target)
				if _, err := os.Stat(resolved); err != nil {
					report(fmt.Sprintf("%s:%d", path, i+1),
						fmt.Sprintf("broken link %q (resolved %s)", m[1], resolved))
				}
			}
		}
		return nil
	})
}

// xrefIndexRow matches a DESIGN.md experiment-index table row: a table
// line whose first cell starts with a B/E identifier, e.g. "| B14 |" or
// "| E7 (WAL soak) |".
var xrefIndexRow = regexp.MustCompile(`^\|\s*([EB]\d+)\b`)

// xrefID matches a single B/E experiment identifier; xrefRange matches
// an identifier range like "E1–E10", "E1-E10" or "B1..B14" (the second
// endpoint's letter may be omitted).
var (
	xrefID    = regexp.MustCompile(`\b([EB])(\d+)\b`)
	xrefRange = regexp.MustCompile(`\b([EB])(\d+)\s*(?:–|—|-|\.\.)\s*(?:[EB])?(\d+)\b`)
)

// checkXref cross-references DESIGN.md's experiment-index rows against
// the B/E identifiers EXPERIMENTS.md mentions: both directions must
// cover each other, so a new benchmark table or soak cannot land in one
// document without the other.
func checkXref(root string, report func(pos, msg string)) error {
	designPath := filepath.Join(root, "DESIGN.md")
	expPath := filepath.Join(root, "EXPERIMENTS.md")
	design, err := os.ReadFile(designPath)
	if err != nil {
		return err
	}
	exp, err := os.ReadFile(expPath)
	if err != nil {
		return err
	}
	indexed := make(map[string]int) // ID -> first index-row line in DESIGN.md
	for i, line := range strings.Split(string(design), "\n") {
		if m := xrefIndexRow.FindStringSubmatch(line); m != nil {
			if _, dup := indexed[m[1]]; !dup {
				indexed[m[1]] = i + 1
			}
		}
	}
	mentioned := make(map[string]int) // ID -> first mention line in EXPERIMENTS.md
	mention := func(id string, line int) {
		if _, dup := mentioned[id]; !dup {
			mentioned[id] = line
		}
	}
	for i, line := range strings.Split(string(exp), "\n") {
		for _, m := range xrefRange.FindAllStringSubmatch(line, -1) {
			lo, _ := strconv.Atoi(m[2])
			hi, _ := strconv.Atoi(m[3])
			for n := lo; n <= hi; n++ {
				mention(fmt.Sprintf("%s%d", m[1], n), i+1)
			}
		}
		for _, m := range xrefID.FindAllStringSubmatch(line, -1) {
			mention(m[1]+m[2], i+1)
		}
	}
	for _, id := range sortedXrefIDs(indexed) {
		if _, ok := mentioned[id]; !ok {
			report(fmt.Sprintf("%s:%d", designPath, indexed[id]),
				fmt.Sprintf("experiment %s is indexed here but never mentioned in EXPERIMENTS.md", id))
		}
	}
	for _, id := range sortedXrefIDs(mentioned) {
		if _, ok := indexed[id]; !ok {
			report(fmt.Sprintf("%s:%d", expPath, mentioned[id]),
				fmt.Sprintf("experiment %s is mentioned here but has no index row in DESIGN.md's experiment index", id))
		}
	}
	return nil
}

// wfqueryMention matches `wfquery <subcommand>` inside a code context.
var wfqueryMention = regexp.MustCompile(`\bwfquery\s+([a-z][a-z0-9-]*)`)

// inlineCode extracts `...` spans from a markdown line.
var inlineCode = regexp.MustCompile("`[^`]*`")

// checkWfqueryXref cross-references OPERATIONS.md's wfquery recipes
// against the CLI's registered subcommands (history.Subcommands()):
// a documented subcommand the binary does not dispatch, or a registered
// subcommand with no documented recipe, is drift. Only code contexts
// count — fenced blocks and inline code spans — so prose like "wfquery
// subcommands" is not a recipe. Roots without an OPERATIONS.md are
// skipped (the check is specific to this repository's runbook layout).
func checkWfqueryXref(root string, report func(pos, msg string)) error {
	opsPath := filepath.Join(root, "OPERATIONS.md")
	data, err := os.ReadFile(opsPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	registered := make(map[string]bool)
	for _, sub := range history.Subcommands() {
		registered[sub] = true
	}
	documented := make(map[string]int) // subcommand -> first recipe line
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		spans := []string{line}
		if !inFence {
			spans = inlineCode.FindAllString(line, -1)
		}
		for _, span := range spans {
			for _, m := range wfqueryMention.FindAllStringSubmatch(span, -1) {
				if _, dup := documented[m[1]]; !dup {
					documented[m[1]] = i + 1
				}
			}
		}
	}
	for _, sub := range sortedKeys(documented) {
		if !registered[sub] {
			report(fmt.Sprintf("%s:%d", opsPath, documented[sub]),
				fmt.Sprintf("wfquery recipe uses subcommand %q, which the CLI does not register (have: %s)",
					sub, strings.Join(history.Subcommands(), ", ")))
		}
	}
	for _, sub := range history.Subcommands() {
		if _, ok := documented[sub]; !ok {
			report(opsPath,
				fmt.Sprintf("registered wfquery subcommand %q has no recipe in OPERATIONS.md", sub))
		}
	}
	return nil
}

// sortedKeys orders a string-keyed map's keys.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedXrefIDs orders identifiers letter-first, then numerically, so
// findings print as B1, B2, ..., B10 rather than lexically.
func sortedXrefIDs(m map[string]int) []string {
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i][0] != ids[j][0] {
			return ids[i][0] < ids[j][0]
		}
		a, _ := strconv.Atoi(ids[i][1:])
		b, _ := strconv.Atoi(ids[j][1:])
		return a < b
	})
	return ids
}

// checkDocComments parses one package directory and reports every
// exported package-level symbol without a doc comment.
func checkDocComments(dir string, report func(pos, msg string)) error {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return err
	}
	for name, pkg := range pkgs {
		d := doc.New(pkg, dir, 0)
		if strings.TrimSpace(d.Doc) == "" {
			report(dir, fmt.Sprintf("package %s has no package comment", name))
		}
		pos := func(n ast.Node) string {
			p := fset.Position(n.Pos())
			return fmt.Sprintf("%s:%d", p.Filename, p.Line)
		}
		for _, f := range d.Funcs {
			if strings.TrimSpace(f.Doc) == "" {
				report(pos(f.Decl), fmt.Sprintf("exported function %s has no doc comment", f.Name))
			}
		}
		checkValues := func(kind string, vals []*doc.Value) {
			for _, v := range vals {
				if strings.TrimSpace(v.Doc) == "" && len(v.Names) > 0 {
					report(pos(v.Decl), fmt.Sprintf("exported %s %s has no doc comment", kind, v.Names[0]))
				}
			}
		}
		checkValues("const", d.Consts)
		checkValues("var", d.Vars)
		for _, t := range d.Types {
			if strings.TrimSpace(t.Doc) == "" {
				report(pos(t.Decl), fmt.Sprintf("exported type %s has no doc comment", t.Name))
			}
			for _, f := range t.Funcs {
				if strings.TrimSpace(f.Doc) == "" {
					report(pos(f.Decl), fmt.Sprintf("exported function %s has no doc comment", f.Name))
				}
			}
			for _, m := range t.Methods {
				if strings.TrimSpace(m.Doc) == "" {
					report(pos(m.Decl), fmt.Sprintf("exported method %s.%s has no doc comment", t.Name, m.Name))
				}
			}
			checkValues("const", t.Consts)
			checkValues("var", t.Vars)
		}
	}
	return nil
}
