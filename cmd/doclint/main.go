// Command doclint is the repository's documentation linter, run by the
// CI docs job. It has two checks, both standard library only:
//
//	doclint -md .                         # relative markdown links resolve
//	doclint internal/wal internal/engine  # exported symbols have doc comments
//
// The -md check walks the tree for *.md files and verifies that every
// relative link target exists (external http(s)/mailto links and pure
// #anchors are skipped; a trailing #fragment is stripped before the
// check). The package check parses each listed directory with go/doc and
// requires a package comment plus a doc comment on every exported
// package-level type, function, method, and const/var group — the same
// contract go vet's stdlib analyzers assume but do not enforce.
//
// Exit status: 0 clean, 1 findings (each printed as file:line: message),
// 2 usage or parse errors.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	mdRoot := flag.String("md", "", "walk this directory and check relative links in every *.md file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: doclint [-md dir] [package-dir]...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *mdRoot == "" && flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	findings := 0
	report := func(pos, msg string) {
		fmt.Printf("%s: %s\n", pos, msg)
		findings++
	}

	if *mdRoot != "" {
		if err := checkMarkdown(*mdRoot, report); err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
	}
	for _, dir := range flag.Args() {
		if err := checkDocComments(dir, report); err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
	}
	if findings > 0 {
		fmt.Printf("doclint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// mdLink matches inline markdown links and images: [text](target) with an
// optional "title". Targets with spaces are not used in this repository.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// checkMarkdown walks root for *.md files (skipping VCS metadata) and
// verifies every relative link target exists on disk.
func checkMarkdown(root string, report func(pos, msg string)) error {
	return filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		lines := strings.Split(string(data), "\n")
		for i, line := range lines {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") ||
					strings.HasPrefix(target, "mailto:") ||
					strings.HasPrefix(target, "#") {
					continue
				}
				if idx := strings.IndexByte(target, '#'); idx >= 0 {
					target = target[:idx]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(path), target)
				if _, err := os.Stat(resolved); err != nil {
					report(fmt.Sprintf("%s:%d", path, i+1),
						fmt.Sprintf("broken link %q (resolved %s)", m[1], resolved))
				}
			}
		}
		return nil
	})
}

// checkDocComments parses one package directory and reports every
// exported package-level symbol without a doc comment.
func checkDocComments(dir string, report func(pos, msg string)) error {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return err
	}
	for name, pkg := range pkgs {
		d := doc.New(pkg, dir, 0)
		if strings.TrimSpace(d.Doc) == "" {
			report(dir, fmt.Sprintf("package %s has no package comment", name))
		}
		pos := func(n ast.Node) string {
			p := fset.Position(n.Pos())
			return fmt.Sprintf("%s:%d", p.Filename, p.Line)
		}
		for _, f := range d.Funcs {
			if strings.TrimSpace(f.Doc) == "" {
				report(pos(f.Decl), fmt.Sprintf("exported function %s has no doc comment", f.Name))
			}
		}
		checkValues := func(kind string, vals []*doc.Value) {
			for _, v := range vals {
				if strings.TrimSpace(v.Doc) == "" && len(v.Names) > 0 {
					report(pos(v.Decl), fmt.Sprintf("exported %s %s has no doc comment", kind, v.Names[0]))
				}
			}
		}
		checkValues("const", d.Consts)
		checkValues("var", d.Vars)
		for _, t := range d.Types {
			if strings.TrimSpace(t.Doc) == "" {
				report(pos(t.Decl), fmt.Sprintf("exported type %s has no doc comment", t.Name))
			}
			for _, f := range t.Funcs {
				if strings.TrimSpace(f.Doc) == "" {
					report(pos(f.Decl), fmt.Sprintf("exported function %s has no doc comment", f.Name))
				}
			}
			for _, m := range t.Methods {
				if strings.TrimSpace(m.Doc) == "" {
					report(pos(m.Decl), fmt.Sprintf("exported method %s.%s has no doc comment", t.Name, m.Name))
				}
			}
			checkValues("const", t.Consts)
			checkValues("var", t.Vars)
		}
	}
	return nil
}
