package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildDoclint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "doclint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestDoclintFindsProblems feeds the linter a broken relative link and a
// package with undocumented exported symbols; both must be reported and
// the exit status must be 1.
func TestDoclintFindsProblems(t *testing.T) {
	bin := buildDoclint(t)
	dir := t.TempDir()
	md := "see [the design](DESIGN.md) and [this](https://example.com/x) and [ok](sub/ok.md)\n"
	if err := os.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "sub", "ok.md"), []byte("fine\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte(md), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg := filepath.Join(dir, "pkg")
	if err := os.MkdirAll(pkg, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package pkg

// Documented is fine.
type Documented struct{}

type Undocumented struct{}

func Exported() {}

func unexported() {}
`
	if err := os.WriteFile(filepath.Join(pkg, "pkg.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-md", dir, pkg)
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("expected exit 1, got %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		`broken link "DESIGN.md"`,
		"no package comment",
		"exported type Undocumented has no doc comment",
		"exported function Exported has no doc comment",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q\n%s", want, s)
		}
	}
	for _, bad := range []string{"example.com", "ok.md", "Documented is fine", "unexported"} {
		if strings.Contains(s, "link \""+bad) || strings.Contains(s, bad+" has no doc") {
			t.Errorf("false positive on %q\n%s", bad, s)
		}
	}
}

// TestDoclintCleanTree pins the repository itself as lint-clean — the
// same invocation the CI docs job runs.
func TestDoclintCleanTree(t *testing.T) {
	bin := buildDoclint(t)
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-md", root,
		filepath.Join(root, "internal", "wal"),
		filepath.Join(root, "internal", "engine"))
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("doclint on the repository failed: %v\n%s", err, out)
	}
}
