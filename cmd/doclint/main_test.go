package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildDoclint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "doclint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestDoclintFindsProblems feeds the linter a broken relative link and a
// package with undocumented exported symbols; both must be reported and
// the exit status must be 1.
func TestDoclintFindsProblems(t *testing.T) {
	bin := buildDoclint(t)
	dir := t.TempDir()
	md := "see [the design](DESIGN.md) and [this](https://example.com/x) and [ok](sub/ok.md)\n"
	if err := os.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "sub", "ok.md"), []byte("fine\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte(md), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg := filepath.Join(dir, "pkg")
	if err := os.MkdirAll(pkg, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package pkg

// Documented is fine.
type Documented struct{}

type Undocumented struct{}

func Exported() {}

func unexported() {}
`
	if err := os.WriteFile(filepath.Join(pkg, "pkg.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-md", dir, pkg)
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("expected exit 1, got %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		`broken link "DESIGN.md"`,
		"no package comment",
		"exported type Undocumented has no doc comment",
		"exported function Exported has no doc comment",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q\n%s", want, s)
		}
	}
	for _, bad := range []string{"example.com", "ok.md", "Documented is fine", "unexported"} {
		if strings.Contains(s, "link \""+bad) || strings.Contains(s, bad+" has no doc") {
			t.Errorf("false positive on %q\n%s", bad, s)
		}
	}
}

// TestDoclintXref pins the cross-reference check: an experiment indexed
// in DESIGN.md but absent from EXPERIMENTS.md is a finding, as is a
// mention with no index row; IDs covered only via a range ("E1–E3")
// count as mentioned; a consistent pair exits 0.
func TestDoclintXref(t *testing.T) {
	bin := buildDoclint(t)

	write := func(dir, design, experiments string) string {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, "DESIGN.md"), []byte(design), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "EXPERIMENTS.md"), []byte(experiments), 0o644); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	// Consistent pair, including a range mention: clean.
	clean := write(t.TempDir(),
		"| E1 (x) | a |\n| E2 | b |\n| E3 | c |\n| B7 | d |\n",
		"The soaks E1–E3 all pass. See B7 for the table.\n")
	if out, err := exec.Command(bin, "-xref", clean).CombinedOutput(); err != nil {
		t.Fatalf("consistent pair reported findings: %v\n%s", err, out)
	}

	// Drift in both directions: indexed-but-unmentioned and
	// mentioned-but-unindexed must each be a finding.
	drift := write(t.TempDir(),
		"| E1 | a |\n| B9 | d |\n",
		"E1 passes. B14 shows near-linear scaling.\n")
	out, err := exec.Command(bin, "-xref", drift).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("expected exit 1, got %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"experiment B9 is indexed here but never mentioned in EXPERIMENTS.md",
		"experiment B14 is mentioned here but has no index row in DESIGN.md",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q\n%s", want, s)
		}
	}
	if strings.Contains(s, "experiment E1") {
		t.Errorf("false positive on consistent E1:\n%s", s)
	}

	// A missing document is a hard error (exit 2), not a finding.
	empty := t.TempDir()
	out, err = exec.Command(bin, "-xref", empty).CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("missing documents: expected exit 2, got %v\n%s", err, out)
	}
}

// TestDoclintCleanTree pins the repository itself as lint-clean — the
// same invocation the CI docs job runs.
func TestDoclintCleanTree(t *testing.T) {
	bin := buildDoclint(t)
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-md", root, "-xref", root,
		filepath.Join(root, "internal", "wal"),
		filepath.Join(root, "internal", "engine"))
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("doclint on the repository failed: %v\n%s", err, out)
	}
}

// TestDoclintWfqueryXref pins the wfquery-recipe cross-check: a recipe
// naming an unregistered subcommand, or a registered subcommand with no
// recipe, is drift and exits 2; a complete, correct runbook is clean; a
// root with no OPERATIONS.md skips the check entirely.
func TestDoclintWfqueryXref(t *testing.T) {
	bin := buildDoclint(t)

	write := func(ops string) string {
		t.Helper()
		dir := t.TempDir()
		for name, body := range map[string]string{
			"DESIGN.md":      "| E1 | a |\n",
			"EXPERIMENTS.md": "E1 passes.\n",
			"OPERATIONS.md":  ops,
		} {
			if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return dir
	}

	// Every registered subcommand documented, inline and fenced: clean.
	clean := write("Run `wfquery agg trail.jsonl` or `wfquery reach -target B f.fdl`.\n" +
		"```\nwfquery state -wal run.wal -inst inst-1 demo.fdl\nwfquery tail -addr :9090\n```\n" +
		"Prose about wfquery subcommands does not count.\n")
	if out, err := exec.Command(bin, "-xref", clean).CombinedOutput(); err != nil {
		t.Fatalf("clean runbook reported findings: %v\n%s", err, out)
	}

	// An unregistered subcommand in a recipe and a missing recipe for a
	// registered one: both reported, exit 2.
	drift := write("Use `wfquery agg t.jsonl`, `wfquery frobnicate x`, and `wfquery reach -target B f.fdl`.\n" +
		"Also `wfquery state -wal w -inst i f.fdl`.\n")
	out, err := exec.Command(bin, "-xref", drift).CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("drift: expected exit 2, got %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		`wfquery recipe uses subcommand "frobnicate"`,
		`registered wfquery subcommand "tail" has no recipe`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q\n%s", want, s)
		}
	}

	// No OPERATIONS.md: the wfquery check is skipped, the B/E check
	// still runs clean.
	skip := t.TempDir()
	for name, body := range map[string]string{"DESIGN.md": "| E1 | a |\n", "EXPERIMENTS.md": "E1 passes.\n"} {
		if err := os.WriteFile(filepath.Join(skip, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if out, err := exec.Command(bin, "-xref", skip).CombinedOutput(); err != nil {
		t.Fatalf("root without OPERATIONS.md should be clean: %v\n%s", err, out)
	}
}
