// Command wfbench regenerates the evaluation of EXPERIMENTS.md: the
// correctness experiments E1–E13 that reproduce the paper's figures and
// appendix traces (plus the WAL, checkpoint, storage-fault, shard-crash,
// archive-tier and queryable-history soaks), and the measurement tables
// B1–B16.
//
//	wfbench                  # run everything
//	wfbench -experiment E2   # one correctness experiment
//	wfbench -bench B2        # one measurement table
//	wfbench -experiment none # measurements only
//	wfbench -json out.json   # also write a machine-readable wfbench/v1 file
//	wfbench -flight-dump f.jsonl  # dump the run's event-bus flight recorder
//	wfbench -trail-export t.jsonl # stream every bus event as a history/v1 trail
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/sim"
)

// main delegates to realMain so the -flight-dump defer runs before the
// process exit code is set (os.Exit skips defers).
func main() {
	os.Exit(realMain())
}

func realMain() int {
	exp := flag.String("experiment", "all", "E1..E13, all, or none")
	bench := flag.String("bench", "all", "B1..B16, S1, all, or none")
	jsonOut := flag.String("json", "", "write every report as machine-readable JSON (wfbench/v1) to this file")
	flightDump := flag.String("flight-dump", "", "attach a flight recorder to the default event bus and dump its JSONL here at exit")
	trailExport := flag.String("trail-export", "", "stream every default-bus event to this file as a history/v1 JSONL trail export (unbounded, unlike the flight recorder's ring)")
	flag.Parse()

	if *trailExport != "" {
		w, err := history.NewWriter(*trailExport)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wfbench: trail export: %v\n", err)
			return 1
		}
		w.Attach(obs.DefaultBus)
		defer func() {
			if err := w.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "wfbench: trail export: %v\n", err)
				return
			}
			fmt.Printf("wrote %s (%d events)\n", *trailExport, w.Events())
		}()
	}

	if *flightDump != "" {
		rec := obs.NewRecorder(obs.DefaultRecorderSize)
		obs.DefaultBus.Attach(rec.Record)
		defer func() {
			if err := rec.DumpFile(*flightDump); err != nil {
				fmt.Fprintf(os.Stderr, "wfbench: flight dump: %v\n", err)
				return
			}
			fmt.Printf("wrote %s (%d of %d events retained)\n", *flightDump, rec.Len(), rec.Total())
		}()
	}

	var bf *sim.BenchFile
	if *jsonOut != "" {
		bf = sim.NewBenchFile()
	}

	experiments := map[string]func() *sim.Report{
		"E1": sim.RunE1, "E2": sim.RunE2, "E3": sim.RunE3, "E4": sim.RunE4, "E5": sim.RunE5, "E6": sim.RunE6,
		"E7": sim.RunE7, "E8": sim.RunE8, "E9": sim.RunE9, "E10": sim.RunE10, "E11": sim.RunE11, "E12": sim.RunE12,
		"E13": sim.RunE13,
	}
	benches := map[string]func() *sim.Report{
		"B1": sim.RunB1, "B2": sim.RunB2, "B3": sim.RunB3, "B4": sim.RunB4,
		"B5": sim.RunB5, "B6": sim.RunB6, "B7": sim.RunB7, "B8": sim.RunB8, "B9": sim.RunB9,
		"B10": sim.RunB10, "B11": sim.RunB11, "B12": sim.RunB12, "B13": sim.RunB13, "B14": sim.RunB14, "B15": sim.RunB15, "B16": sim.RunB16,
		"S1": sim.RunS1,
	}

	code := 0
	run := func(sel string, all map[string]func() *sim.Report, order []string) {
		switch strings.ToLower(sel) {
		case "none":
			return
		case "all":
			for _, id := range order {
				rep := all[id]()
				fmt.Println(rep)
				if bf != nil {
					bf.Add(rep)
				}
				if !rep.Pass {
					code = 1
				}
			}
		default:
			f, ok := all[strings.ToUpper(sel)]
			if !ok {
				fmt.Fprintf(os.Stderr, "wfbench: unknown selection %q\n", sel)
				code = 2
				return
			}
			rep := f()
			fmt.Println(rep)
			if bf != nil {
				bf.Add(rep)
			}
			if !rep.Pass {
				code = 1
			}
		}
	}
	run(*exp, experiments, []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13"})
	if code != 2 {
		run(*bench, benches, []string{"B1", "B2", "B3", "B4", "B5", "B6", "B7", "B8", "B9", "B10", "B11", "B12", "B13", "B14", "B15", "B16", "S1"})
	}
	if bf != nil && code != 2 {
		if err := bf.WriteFile(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "wfbench: writing %s: %v\n", *jsonOut, err)
			return 1
		}
		fmt.Printf("wrote %s (%d reports)\n", *jsonOut, len(bf.Reports))
	}
	return code
}
