package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildWfload compiles the command once per test into a temp dir.
func buildWfload(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "wfload")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestUsageErrorsExitTwo pins the CLI contract: flag misuse is a usage
// error (exit 2, message on stderr), not a runtime failure (exit 1) — in
// particular -rate is mandatory, because an open-loop generator without
// an offered rate is meaningless.
func TestUsageErrorsExitTwo(t *testing.T) {
	bin := buildWfload(t)
	cases := []struct {
		name   string
		args   []string
		stderr string
	}{
		{"no rate", []string{"-n", "10"}, "-rate is required"},
		{"zero rate", []string{"-rate", "0"}, "-rate is required and must be > 0"},
		{"negative rate", []string{"-rate", "-5"}, "-rate is required and must be > 0"},
		{"bad arrivals", []string{"-rate", "100", "-arrivals", "bursty"}, "-arrivals must be poisson or uniform"},
		{"zero n", []string{"-rate", "100", "-n", "0"}, "-n must be >= 1"},
		{"zero shards", []string{"-rate", "100", "-shards", "0"}, "-shards and -parallel must be >= 1"},
		{"zero parallel", []string{"-rate", "100", "-parallel", "0"}, "-shards and -parallel must be >= 1"},
		{"negative max-queue", []string{"-rate", "100", "-max-queue", "-1"}, "-max-queue must be >= 0"},
		{"group-commit without dir", []string{"-rate", "100", "-group-commit"}, "-group-commit, -fsync and -wal-format require -dir"},
		{"fsync without dir", []string{"-rate", "100", "-fsync"}, "-group-commit, -fsync and -wal-format require -dir"},
		{"wal-format without dir", []string{"-rate", "100", "-wal-format", "binary"}, "-group-commit, -fsync and -wal-format require -dir"},
		{"bad wal-format", []string{"-rate", "100", "-dir", "d", "-wal-format", "xml"}, "-wal-format must be text or binary"},
		{"process without file", []string{"-rate", "100", "-process", "demo"}, "-process requires an FDL file argument"},
		{"chain with fdl", []string{"-rate", "100", "-chain", "3", "x.fdl"}, "-chain and -service-ms configure the builtin workload"},
		{"service-ms with fdl", []string{"-rate", "100", "-service-ms", "2", "x.fdl"}, "-chain and -service-ms configure the builtin workload"},
		{"zero chain", []string{"-rate", "100", "-chain", "0"}, "-chain must be >= 1 and -service-ms >= 0"},
		{"zero p99", []string{"-rate", "100", "-p99", "0s"}, "-p99 must be a positive duration"},
		{"two files", []string{"-rate", "100", "a.fdl", "b.fdl"}, "at most one FDL file argument"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cmd := exec.Command(bin, c.args...)
			var stderr strings.Builder
			cmd.Stderr = &stderr
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("expected exit error, got %v", err)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Errorf("exit code = %d, want 2\nstderr: %s", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), c.stderr) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), c.stderr)
			}
		})
	}
}

// TestBuiltinOpenLoopRun drives the builtin chain workload at a rate the
// fleet can absorb and checks the summary plus the wfload/v1 histogram
// artifact: every arrival accepted, one latency per accepted request,
// and the summary percentiles consistent with the artifact.
func TestBuiltinOpenLoopRun(t *testing.T) {
	bin := buildWfload(t)
	hist := filepath.Join(t.TempDir(), "lat.json")
	out, err := exec.Command(bin, "-rate", "400", "-n", "60", "-shards", "2",
		"-chain", "2", "-service-ms", "1", "-seed", "7", "-hist", hist).CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"wfload: offered 400.0/s (poisson, seed 7): 60 arrivals",
		"shards=2 workers/shard=2",
		"latency (accepted, from scheduled arrival):",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q\n%s", want, s)
		}
	}
	data, err := os.ReadFile(hist)
	if err != nil {
		t.Fatalf("histogram artifact: %v", err)
	}
	var art struct {
		Version     string  `json:"version"`
		Rate        float64 `json:"rate"`
		Accepted    int     `json:"accepted"`
		Shed        int     `json:"shed"`
		P99Ns       int64   `json:"p99_ns"`
		LatenciesNs []int64 `json:"latencies_ns"`
	}
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("parsing artifact: %v", err)
	}
	if art.Version != "wfload/v1" || art.Rate != 400 {
		t.Errorf("artifact header: %+v", art)
	}
	if art.Accepted+art.Shed != 60 {
		t.Errorf("accepted %d + shed %d != 60 arrivals", art.Accepted, art.Shed)
	}
	if len(art.LatenciesNs) != art.Accepted {
		t.Errorf("artifact has %d latencies for %d accepted requests", len(art.LatenciesNs), art.Accepted)
	}
	for _, ns := range art.LatenciesNs {
		if ns <= 0 {
			t.Errorf("non-positive latency %d in artifact", ns)
		}
	}
}

// TestUniformScheduleIsDeterministic pins that -arrivals uniform ignores
// the seed: two runs with different seeds report identical arrival
// counts (the schedule is purely i/rate).
func TestUniformScheduleIsDeterministic(t *testing.T) {
	bin := buildWfload(t)
	for _, seed := range []string{"1", "99"} {
		out, err := exec.Command(bin, "-rate", "500", "-n", "30", "-arrivals", "uniform",
			"-seed", seed, "-chain", "1", "-service-ms", "0").CombinedOutput()
		if err != nil {
			t.Fatalf("run seed=%s: %v\n%s", seed, err, out)
		}
		if !strings.Contains(string(out), "(uniform, seed "+seed+"): 30 arrivals") {
			t.Errorf("seed=%s summary wrong:\n%s", seed, out)
		}
		if !strings.Contains(string(out), "accepted=30 shed=0 failed=0") {
			t.Errorf("seed=%s arrivals not all accepted:\n%s", seed, out)
		}
	}
}

// TestP99GateBreachExitsOne runs a workload whose service time alone
// exceeds an absurdly tight p99 bound: the run must fail with exit 1 and
// name the gate, distinguishing an SLO breach from flag misuse (exit 2).
func TestP99GateBreachExitsOne(t *testing.T) {
	bin := buildWfload(t)
	cmd := exec.Command(bin, "-rate", "500", "-n", "20", "-chain", "1",
		"-service-ms", "2", "-p99", "1ns")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("expected exit error, got %v", err)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Errorf("exit code = %d, want 1\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "p99 gate: measured") {
		t.Errorf("stderr %q does not report the p99 gate", stderr.String())
	}
}

// TestShardedDurableRun runs against a shard directory with group commit
// and verifies the on-disk layout wfload leaves behind: one shard-NN
// directory per shard, each holding at least one WAL segment.
func TestShardedDurableRun(t *testing.T) {
	bin := buildWfload(t)
	dir := filepath.Join(t.TempDir(), "fleet")
	out, err := exec.Command(bin, "-rate", "300", "-n", "40", "-shards", "2",
		"-chain", "2", "-service-ms", "1", "-dir", dir, "-group-commit",
		"-wal-format", "binary").CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	for i := 0; i < 2; i++ {
		shardDir := filepath.Join(dir, "shard-0"+string(rune('0'+i)))
		ents, err := os.ReadDir(shardDir)
		if err != nil {
			t.Fatalf("shard dir %s: %v", shardDir, err)
		}
		segs := 0
		for _, ent := range ents {
			if strings.HasPrefix(ent.Name(), "wal-") && strings.HasSuffix(ent.Name(), ".seg") {
				segs++
			}
		}
		if segs == 0 {
			t.Errorf("%s holds no WAL segments", shardDir)
		}
	}
}

// TestFDLWorkload runs a template from an FDL file through the sharded
// fleet: all arrivals must finish and the run must exit 0.
func TestFDLWorkload(t *testing.T) {
	bin := buildWfload(t)
	dir := t.TempDir()
	fdlPath := filepath.Join(dir, "p.fdl")
	src := `PROGRAM 'step'
END 'step'

PROCESS 'demo' ( 'Default', 'Default' )
  PROGRAM_ACTIVITY 'A' ( 'Default', 'Default' )
    PROGRAM 'step'
  END 'A'
  PROGRAM_ACTIVITY 'B' ( 'Default', 'Default' )
    PROGRAM 'step'
  END 'B'
  CONTROL FROM 'A' TO 'B'
END 'demo'
`
	if err := os.WriteFile(fdlPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-rate", "500", "-n", "30", "-shards", "2",
		"-process", "demo", fdlPath).CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "accepted=30 shed=0 failed=0") {
		t.Errorf("FDL workload did not finish cleanly:\n%s", out)
	}
}
