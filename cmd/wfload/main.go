// Command wfload is an open-loop workload generator for the sharded
// workflow fleet. Unlike a closed-loop driver (which waits for each
// response before sending the next request, so a slow server conveniently
// slows the load down — coordinated omission), wfload fires arrivals on a
// precomputed schedule derived only from -rate and -arrivals: the system
// under test cannot slow the offered load down, and every latency is
// measured from the request's *scheduled* arrival time, so queueing delay
// caused by the generator falling behind counts against the fleet.
//
//	wfload -rate 200 -n 1000                  # builtin chain workload
//	wfload -rate 200 -n 1000 -shards 4        # sharded fleet
//	wfload -rate 150 -arrivals uniform -n 600 # deterministic pacing
//	wfload -rate 200 -n 500 -process demo app.fdl
//
// The builtin workload is a linear chain of -chain activities whose
// program sleeps -service-ms and commits — pure modeled I/O wait, so
// per-shard capacity is parallel/(chain*service) instances per second by
// construction. Alternatively an FDL file argument runs a real process
// template (every program bound to a simulated resource manager that
// always commits).
//
// Durability: -dir runs every shard against its own group-commit-capable
// segmented WAL under dir/shard-NN/ (the same layout wfrun -resume and
// RecoverFleet read back); -group-commit, -fsync and -wal-format require
// it.
//
// Gates and artifacts: -p99 makes the run exit 1 when the accepted p99
// exceeds the bound — a latency SLO check for CI. -hist FILE writes a
// wfload/v1 JSON artifact with the run configuration, summary counters
// and every accepted request's latency in nanoseconds.
//
// Flag misuse exits 2 (usage), runtime failures and gate breaches exit 1.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/fdl"
	"repro/internal/fmtm"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rm"
	"repro/internal/wal"
)

func main() {
	rate := flag.Float64("rate", 0, "offered arrival rate in requests/sec (required, > 0)")
	n := flag.Int("n", 200, "total number of arrivals")
	arrivals := flag.String("arrivals", "poisson", "arrival schedule: poisson (exponential inter-arrivals) or uniform (fixed spacing)")
	seed := flag.Int64("seed", 1, "seed for the poisson arrival schedule")
	shards := flag.Int("shards", 1, "engine shards: each owns its workers, queue and (with -dir) WAL")
	parallel := flag.Int("parallel", 2, "workers per shard")
	maxQueue := flag.Int("max-queue", 16, "admission queue depth per shard beyond the workers")
	dir := flag.String("dir", "", "shard directory root: each shard logs to dir/shard-NN/ (default: in-memory)")
	groupCommit := flag.Bool("group-commit", false, "batch each shard's WAL appends into one fsync per flush (requires -dir)")
	fsync := flag.Bool("fsync", false, "fsync each shard's WAL after every record (requires -dir)")
	walFormat := flag.String("wal-format", "text", "record framing for shard segments: text or binary (requires -dir)")
	chain := flag.Int("chain", 4, "builtin workload: number of chained activities per instance")
	serviceMs := flag.Float64("service-ms", 5, "builtin workload: per-activity service time in milliseconds (modeled I/O wait)")
	process := flag.String("process", "", "FDL mode: process template to instantiate (default: the file's first process)")
	p99Gate := flag.Duration("p99", 0, "fail (exit 1) when the accepted p99 latency exceeds this bound, e.g. 250ms")
	histPath := flag.String("hist", "", "write a wfload/v1 JSON latency artifact (per-request latencies) to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wfload -rate r [-n count] [-arrivals poisson|uniform] [-seed s] [-shards k] [-parallel p] [-max-queue q] [-dir root [-group-commit] [-fsync] [-wal-format f]] [-chain c] [-service-ms ms] [-p99 bound] [-hist file] [[-process name] file.fdl]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	explicit := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	usageError := func(msg string) {
		fmt.Fprintln(os.Stderr, "wfload: "+msg)
		flag.Usage()
		os.Exit(2)
	}
	switch {
	case flag.NArg() > 1:
		usageError("at most one FDL file argument")
	case !explicit["rate"] || *rate <= 0:
		usageError("-rate is required and must be > 0 (open-loop load is defined by its offered rate)")
	case *arrivals != "poisson" && *arrivals != "uniform":
		usageError("-arrivals must be poisson or uniform")
	case *n < 1:
		usageError("-n must be >= 1")
	case *shards < 1 || *parallel < 1:
		usageError("-shards and -parallel must be >= 1")
	case *maxQueue < 0:
		usageError("-max-queue must be >= 0")
	case *dir == "" && (*groupCommit || *fsync || explicit["wal-format"]):
		usageError("-group-commit, -fsync and -wal-format require -dir")
	case *walFormat != "text" && *walFormat != "binary":
		usageError("-wal-format must be text or binary")
	case flag.NArg() == 0 && explicit["process"]:
		usageError("-process requires an FDL file argument")
	case flag.NArg() == 1 && (explicit["chain"] || explicit["service-ms"]):
		usageError("-chain and -service-ms configure the builtin workload and are incompatible with an FDL file")
	case *chain < 1 || *serviceMs < 0:
		usageError("-chain must be >= 1 and -service-ms >= 0")
	case explicit["p99"] && *p99Gate <= 0:
		usageError("-p99 must be a positive duration")
	}

	reg := obs.NewRegistry()
	e, proc, err := buildWorkload(reg, flag.Arg(0), *process, *chain, *serviceMs)
	if err != nil {
		fatal(err)
	}
	format := wal.FormatText
	if *walFormat == "binary" {
		format = wal.FormatBinary
	}
	f, err := engine.NewFleet(e, engine.FleetConfig{
		Shards: *shards, Dir: *dir, Parallel: *parallel,
		MaxQueue: *maxQueue, HotQueue: *parallel + *maxQueue/2,
		Shed: true, GroupCommit: *groupCommit, Fsync: *fsync, Format: format,
	})
	if err != nil {
		fatal(err)
	}

	// The whole schedule is computed up front from the seed: offered load
	// is a property of the run configuration, never of server behavior.
	offsets := schedule(*arrivals, *rate, *n, *seed)
	lat := make([]time.Duration, *n)
	okd := make([]bool, *n)
	accepted, failed := 0, 0
	start := time.Now()
	for i := 0; i < *n; i++ {
		arrive := start.Add(offsets[i])
		if d := time.Until(arrive); d > 0 {
			time.Sleep(d)
		}
		i := i
		_, err := f.Submit(proc, nil, func(_ *engine.Instance, err error) {
			if err == nil {
				lat[i] = time.Since(arrive)
				okd[i] = true
			}
		})
		if err != nil && !errors.Is(err, engine.ErrOverloaded) {
			failed++
		} else if err == nil {
			accepted++
		}
	}
	f.Drain()
	elapsed := time.Since(start)
	stats := f.Stats()
	if err := f.Close(); err != nil {
		fatal(err)
	}

	var acceptedLat []time.Duration
	completed := 0
	for i, ok := range okd {
		if ok {
			acceptedLat = append(acceptedLat, lat[i])
			completed++
		}
	}
	failed += accepted - completed
	records := reg.Counter("engine.wal.appends").Value()
	recsPerSec := float64(records) / elapsed.Seconds()
	p50 := percentile(acceptedLat, 50)
	p90 := percentile(acceptedLat, 90)
	p99 := percentile(acceptedLat, 99)
	var max time.Duration
	for _, d := range acceptedLat {
		if d > max {
			max = d
		}
	}

	fmt.Printf("wfload: offered %.1f/s (%s, seed %d): %d arrivals over %s\n",
		*rate, *arrivals, *seed, *n, elapsed.Round(time.Millisecond))
	fmt.Printf("accepted=%d shed=%d failed=%d rebalanced=%d shards=%d workers/shard=%d\n",
		accepted, stats.Shed, failed, stats.Rebalanced, *shards, *parallel)
	fmt.Printf("throughput: %.1f accepted/s, %.0f records/s\n",
		float64(completed)/elapsed.Seconds(), recsPerSec)
	fmt.Printf("latency (accepted, from scheduled arrival): p50=%s p90=%s p99=%s max=%s\n",
		p50.Round(time.Microsecond), p90.Round(time.Microsecond),
		p99.Round(time.Microsecond), max.Round(time.Microsecond))

	if *histPath != "" {
		art := histArtifact{
			Version: "wfload/v1", Rate: *rate, Arrivals: *arrivals, Seed: *seed,
			N: *n, Shards: *shards, Parallel: *parallel, MaxQueue: *maxQueue,
			Accepted: accepted, Shed: int(stats.Shed), Failed: failed,
			Rebalanced: stats.Rebalanced, ElapsedNs: elapsed.Nanoseconds(),
			RecordsPerSec: recsPerSec,
			P50Ns:         p50.Nanoseconds(), P90Ns: p90.Nanoseconds(),
			P99Ns: p99.Nanoseconds(), MaxNs: max.Nanoseconds(),
		}
		for _, d := range acceptedLat {
			art.LatenciesNs = append(art.LatenciesNs, d.Nanoseconds())
		}
		data, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*histPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d latencies)\n", *histPath, len(art.LatenciesNs))
	}

	if failed > 0 {
		fatal(fmt.Errorf("%d of %d accepted instances failed", failed, accepted))
	}
	if *p99Gate > 0 && p99 > *p99Gate {
		fatal(fmt.Errorf("p99 gate: measured %s exceeds bound %s", p99, *p99Gate))
	}
}

// histArtifact is the wfload/v1 machine-readable run record.
type histArtifact struct {
	Version       string  `json:"version"`
	Rate          float64 `json:"rate"`
	Arrivals      string  `json:"arrivals"`
	Seed          int64   `json:"seed"`
	N             int     `json:"n"`
	Shards        int     `json:"shards"`
	Parallel      int     `json:"parallel"`
	MaxQueue      int     `json:"max_queue"`
	Accepted      int     `json:"accepted"`
	Shed          int     `json:"shed"`
	Failed        int     `json:"failed"`
	Rebalanced    int64   `json:"rebalanced"`
	ElapsedNs     int64   `json:"elapsed_ns"`
	RecordsPerSec float64 `json:"records_per_sec"`
	P50Ns         int64   `json:"p50_ns"`
	P90Ns         int64   `json:"p90_ns"`
	P99Ns         int64   `json:"p99_ns"`
	MaxNs         int64   `json:"max_ns"`
	LatenciesNs   []int64 `json:"latencies_ns"`
}

// schedule precomputes every arrival's offset from the run start.
// Uniform spacing is exactly i/rate; poisson draws exponential
// inter-arrival gaps with mean 1/rate from the seed, the arrival process
// of independent clients.
func schedule(kind string, rate float64, n int, seed int64) []time.Duration {
	offsets := make([]time.Duration, n)
	interval := float64(time.Second) / rate
	if kind == "uniform" {
		for i := range offsets {
			offsets[i] = time.Duration(float64(i) * interval)
		}
		return offsets
	}
	r := rand.New(rand.NewSource(seed))
	at := 0.0
	for i := range offsets {
		offsets[i] = time.Duration(at)
		at += r.ExpFloat64() * interval
	}
	return offsets
}

// buildWorkload assembles the engine and target process: the builtin
// sleep-chain when no FDL file is given, otherwise the file's template
// with every program bound to an always-committing simulated resource
// manager.
func buildWorkload(reg *obs.Registry, fdlPath, process string, chain int, serviceMs float64) (*engine.Engine, string, error) {
	e := engine.New(engine.WithMetrics(reg))
	if fdlPath == "" {
		service := time.Duration(serviceMs * float64(time.Millisecond))
		err := e.RegisterProgram("work", engine.ProgramFunc(func(inv *engine.Invocation) error {
			if service > 0 {
				time.Sleep(service)
			}
			inv.Out.SetRC(0)
			return nil
		}))
		if err != nil {
			return nil, "", err
		}
		p := model.NewProcess("load")
		for i := 1; i <= chain; i++ {
			name := fmt.Sprintf("A%d", i)
			p.Activities = append(p.Activities, &model.Activity{
				Name: name, Kind: model.KindProgram, Program: "work",
			})
			if i > 1 {
				p.Control = append(p.Control, &model.ControlConnector{
					From: fmt.Sprintf("A%d", i-1), To: name, Condition: expr.MustParse("RC = 0"),
				})
			}
		}
		if err := e.RegisterProcess(p); err != nil {
			return nil, "", err
		}
		return e, p.Name, nil
	}
	src, err := os.ReadFile(fdlPath)
	if err != nil {
		return nil, "", err
	}
	file, err := fdl.Parse(string(src))
	if err != nil {
		return nil, "", err
	}
	if err := file.Check(); err != nil {
		return nil, "", err
	}
	if len(file.Processes) == 0 {
		return nil, "", fmt.Errorf("no processes in %s", fdlPath)
	}
	inj := rm.NewInjector()
	rec := &rm.Recorder{}
	for _, prog := range file.Programs {
		if prog.Name == fmtm.CopyName {
			if err := fmtm.RegisterRuntime(e); err != nil {
				return nil, "", err
			}
			continue
		}
		sub := rm.Subtransaction{Name: prog.Name}
		if err := e.RegisterProgram(prog.Name, rm.Program(sub, inj, rec)); err != nil {
			return nil, "", err
		}
	}
	if err := fmtm.Install(e, file); err != nil {
		return nil, "", err
	}
	name := process
	if name == "" {
		name = file.Processes[0].Name
	}
	return e, name, nil
}

// percentile returns the exact p-th percentile of the sample (nearest
// rank on the sorted values); zero for an empty sample.
func percentile(lat []time.Duration, p int) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (len(s)*p + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(s) {
		idx = len(s)
	}
	return s[idx-1]
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wfload: %v\n", err)
	os.Exit(1)
}
