// Command wfrun imports an FDL definition file, instantiates a process
// template and navigates it to completion, printing the audit trail — the
// right-hand side of the Figure 5 pipeline.
//
// Every program registered in the FDL file is bound to a simulated
// transactional resource manager whose outcome can be scripted from the
// command line, so the compensation and alternative-path machinery of
// generated processes can be observed without writing any code:
//
//	wfrun -process travel -abort book_car travel.fdl
//	wfrun -process fig3 -abort T8 -abort-n T7=2 fig3.fdl
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/fdl"
	"repro/internal/fmtm"
	"repro/internal/rm"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	process := flag.String("process", "", "process template to instantiate (default: the file's first process)")
	trace := flag.Bool("trace", true, "print the audit trail")
	var aborts, abortNs multiFlag
	flag.Var(&aborts, "abort", "program that aborts on every attempt (repeatable)")
	flag.Var(&abortNs, "abort-n", "program that aborts the first k attempts, as name=k (repeatable)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wfrun [-process name] [-abort prog]... [-abort-n prog=k]... file.fdl\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	file, err := fdl.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	if err := file.Check(); err != nil {
		fatal(err)
	}
	if len(file.Processes) == 0 {
		fatal(fmt.Errorf("no processes in %s", flag.Arg(0)))
	}
	name := *process
	if name == "" {
		name = file.Processes[0].Name
	}

	inj := rm.NewInjector()
	for _, a := range aborts {
		inj.AbortAlways(a)
	}
	for _, spec := range abortNs {
		parts := strings.SplitN(spec, "=", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("-abort-n wants name=k, got %q", spec))
		}
		k, err := strconv.Atoi(parts[1])
		if err != nil {
			fatal(fmt.Errorf("-abort-n %q: %v", spec, err))
		}
		inj.AbortN(parts[0], k)
	}

	rec := &rm.Recorder{}
	e := engine.New()
	for _, prog := range file.Programs {
		if prog.Name == fmtm.CopyName {
			if err := fmtm.RegisterRuntime(e); err != nil {
				fatal(err)
			}
			continue
		}
		sub := rm.Subtransaction{Name: prog.Name}
		if err := e.RegisterProgram(prog.Name, rm.Program(sub, inj, rec)); err != nil {
			fatal(err)
		}
	}
	if err := fmtm.Install(e, file); err != nil {
		fatal(err)
	}

	inst, err := e.CreateInstance(name, nil, nil)
	if err != nil {
		fatal(err)
	}
	if err := inst.Start(); err != nil {
		fatal(err)
	}
	if *trace {
		for _, ev := range inst.Trail() {
			fmt.Println(ev)
		}
	}
	fmt.Printf("instance %s of %s: finished=%v\n", inst.ID(), name, inst.Finished())
	if events := rec.Events(); len(events) > 0 {
		var parts []string
		for _, e := range events {
			parts = append(parts, e.String())
		}
		fmt.Printf("transactional history: %s\n", strings.Join(parts, " "))
	}
	fmt.Printf("output: %s\n", inst.Output())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wfrun: %v\n", err)
	os.Exit(1)
}
