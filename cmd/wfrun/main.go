// Command wfrun imports an FDL definition file, instantiates a process
// template and navigates it to completion, printing the audit trail — the
// right-hand side of the Figure 5 pipeline.
//
// Every program registered in the FDL file is bound to a simulated
// transactional resource manager whose outcome can be scripted from the
// command line, so the compensation and alternative-path machinery of
// generated processes can be observed without writing any code:
//
//	wfrun -process travel -abort book_car travel.fdl
//	wfrun -process fig3 -abort T8 -abort-n T7=2 fig3.fdl
//
// With -wal the navigation log is written to a CRC-framed file (add
// -fsync for a durable append per record), and -crash-at N simulates a
// server failure after N records: the run stops with an injected crash,
// the log is repaired (truncate-and-resume) and a fresh engine recovers
// the instance from it, demonstrating the §3.3 forward-recovery path:
//
//	wfrun -process travel -abort book_car -wal travel.wal -crash-at 5 travel.fdl
//
// Observability: -metrics dumps the engine/WAL metric registry in
// Prometheus text format after the run, -metrics-addr serves it (plus
// ?format=json) over HTTP while the run executes, and -spans renders the
// instance's span tree derived from the audit trail.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/fdl"
	"repro/internal/fmtm"
	"repro/internal/obs"
	"repro/internal/rm"
	"repro/internal/wal"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	process := flag.String("process", "", "process template to instantiate (default: the file's first process)")
	trace := flag.Bool("trace", true, "print the audit trail")
	walPath := flag.String("wal", "", "write the navigation log to this file (default: in-memory)")
	fsync := flag.Bool("fsync", false, "fsync the WAL after every record (requires -wal)")
	crashAt := flag.Int("crash-at", 0, "inject a crash after N WAL records, then repair and recover (requires -wal)")
	metrics := flag.Bool("metrics", false, "dump the metric registry (Prometheus text format) after the run")
	metricsAddr := flag.String("metrics-addr", "", "serve metrics over HTTP on this address while running (e.g. :9090)")
	spans := flag.Bool("spans", false, "print the instance's span tree derived from the audit trail")
	var aborts, abortNs multiFlag
	flag.Var(&aborts, "abort", "program that aborts on every attempt (repeatable)")
	flag.Var(&abortNs, "abort-n", "program that aborts the first k attempts, as name=k (repeatable)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wfrun [-process name] [-abort prog]... [-abort-n prog=k]... [-wal file [-fsync] [-crash-at n]] [-metrics] [-metrics-addr :port] [-spans] file.fdl\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	// Flag misuse is a usage error (exit 2), distinct from runtime
	// failures (exit 1): scripts can tell a bad invocation from a bad run.
	if *walPath == "" && (*fsync || *crashAt > 0) {
		fmt.Fprintln(os.Stderr, "wfrun: -fsync and -crash-at require -wal")
		flag.Usage()
		os.Exit(2)
	}
	if *metricsAddr != "" {
		go func() {
			if err := http.ListenAndServe(*metricsAddr, obs.Handler(obs.Default)); err != nil {
				fmt.Fprintf(os.Stderr, "wfrun: metrics server: %v\n", err)
			}
		}()
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	file, err := fdl.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	if err := file.Check(); err != nil {
		fatal(err)
	}
	if len(file.Processes) == 0 {
		fatal(fmt.Errorf("no processes in %s", flag.Arg(0)))
	}
	name := *process
	if name == "" {
		name = file.Processes[0].Name
	}

	// build assembles a fresh engine with freshly scripted resource
	// managers; recovery after -crash-at uses a second one, exactly as a
	// restarted workflow server would.
	build := func() (*engine.Engine, *rm.Recorder) {
		inj := rm.NewInjector()
		for _, a := range aborts {
			inj.AbortAlways(a)
		}
		for _, spec := range abortNs {
			parts := strings.SplitN(spec, "=", 2)
			if len(parts) != 2 {
				fatal(fmt.Errorf("-abort-n wants name=k, got %q", spec))
			}
			k, err := strconv.Atoi(parts[1])
			if err != nil {
				fatal(fmt.Errorf("-abort-n %q: %v", spec, err))
			}
			inj.AbortN(parts[0], k)
		}
		rec := &rm.Recorder{}
		e := engine.New()
		for _, prog := range file.Programs {
			if prog.Name == fmtm.CopyName {
				if err := fmtm.RegisterRuntime(e); err != nil {
					fatal(err)
				}
				continue
			}
			sub := rm.Subtransaction{Name: prog.Name}
			if err := e.RegisterProgram(prog.Name, rm.Program(sub, inj, rec)); err != nil {
				fatal(err)
			}
		}
		if err := fmtm.Install(e, file); err != nil {
			fatal(err)
		}
		return e, rec
	}

	var log wal.Log
	var flog *wal.FileLog
	if *walPath != "" {
		var opts []wal.FileOption
		if *fsync {
			opts = append(opts, wal.WithFsync())
		}
		flog, err = wal.OpenFileLog(*walPath, opts...)
		if err != nil {
			fatal(err)
		}
		log = flog
		if *crashAt > 0 {
			log = wal.NewFaultLog(flog, *crashAt, false)
		}
	}

	e, rec := build()
	inst, err := e.CreateInstance(name, nil, log)
	if err != nil {
		fatal(err)
	}
	err = inst.Start()
	switch {
	case *crashAt > 0:
		if !errors.Is(err, wal.ErrCrash) {
			fatal(fmt.Errorf("expected injected crash after %d records, got: %v", *crashAt, err))
		}
		if err := flog.Close(); err != nil {
			fatal(err)
		}
		recs, dropped, err := wal.RepairFile(*walPath)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("crashed after %d records; repaired %s: %d records kept, %d bytes truncated\n",
			*crashAt, *walPath, len(recs), dropped)
		e2, rec2 := build()
		inst, err = engine.Recover(e2, recs, nil)
		if err != nil {
			fatal(err)
		}
		rec = rec2
	case err != nil:
		fatal(err)
	default:
		if flog != nil {
			if err := flog.Close(); err != nil {
				fatal(err)
			}
		}
	}
	if *trace {
		for _, ev := range inst.Trail() {
			fmt.Println(ev)
		}
	}
	if *spans {
		fmt.Print(inst.Trace().Render())
	}
	fmt.Printf("instance %s of %s: finished=%v\n", inst.ID(), name, inst.Finished())
	if events := rec.Events(); len(events) > 0 {
		var parts []string
		for _, e := range events {
			parts = append(parts, e.String())
		}
		fmt.Printf("transactional history: %s\n", strings.Join(parts, " "))
	}
	fmt.Printf("output: %s\n", inst.Output())
	if *metrics {
		fmt.Println("-- metrics --")
		obs.WritePrometheus(os.Stdout, obs.Default)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wfrun: %v\n", err)
	os.Exit(1)
}
