// Command wfrun imports an FDL definition file, instantiates a process
// template and navigates it to completion, printing the audit trail — the
// right-hand side of the Figure 5 pipeline.
//
// Every program registered in the FDL file is bound to a simulated
// transactional resource manager whose outcome can be scripted from the
// command line, so the compensation and alternative-path machinery of
// generated processes can be observed without writing any code:
//
//	wfrun -process travel -abort book_car travel.fdl
//	wfrun -process fig3 -abort T8 -abort-n T7=2 fig3.fdl
//
// With -wal the navigation log is written to a CRC-framed file (add
// -fsync for a durable append per record), and -crash-at N simulates a
// server failure after N records: the run stops with an injected crash,
// the log is repaired (truncate-and-resume) and a fresh engine recovers
// the instance from it, demonstrating the §3.3 forward-recovery path:
//
//	wfrun -process travel -abort book_car -wal travel.wal -crash-at 5 travel.fdl
//
// Observability: -metrics dumps the engine/WAL metric registry in
// Prometheus text format after the run and -spans renders the instance's
// span tree derived from the audit trail. -metrics-addr starts the live
// ops surface while the run executes: /metrics (plus ?format=json),
// /healthz (liveness plus WAL/checkpointer staleness), /statusz
// (per-instance state, fleet gauges, latency quantiles), /events (a
// Server-Sent-Events tail of the engine/WAL event bus; tune the
// per-client queue with -sse-buffer) and, with -pprof, /debug/pprof/*.
// -linger-ms keeps the surface serving that long after the run completes
// so a monitor attached late still sees it; -flight-recorder FILE dumps
// the bus's retained event ring as JSONL at exit, success or failure.
// -trail-export FILE streams every bus event to disk as a schema-stamped
// history/v1 trail — unlike the flight recorder's bounded ring it
// retains the whole run, and the writer is flushed on every exit path
// (normal, fatal, forced second-signal exit), so even a killed run
// leaves a queryable prefix for wfquery:
//
//	wfrun -process travel -n 8 -parallel 4 -metrics-addr :9090 -pprof travel.fdl
//	wftop -addr localhost:9090
//
// Fleet mode executes many instances of the same template concurrently
// against a bounded scheduler and prints an aggregate summary instead of
// a per-instance trail: -n sets the fleet size, -parallel the number of
// instances in flight. -max-queue bounds the admission queue beyond the
// workers and -shed rejects (and counts) arrivals that find it full
// instead of blocking the producer — the overload-control knobs. With
// -wal the whole fleet shares one log; -group-commit batches the fleet's
// appends into one fsync per flush (tune with -flush-ms and -batch):
//
//	wfrun -process travel -wal travel.wal -group-commit -n 64 -parallel 8 -metrics travel.fdl
//
// With -shards k > 1 the fleet is consistent-hash partitioned across k
// engine shards: each shard runs -parallel workers with its own bounded
// admission queue, and with -wal the path becomes the fleet root
// directory holding one shard-NN subdirectory per shard, each with its
// own segmented WAL (sharing -group-commit, -fsync and -wal-format).
// The summary adds per-shard placement counts. A sharded run is resumed
// with -resume -shards k -wal DIR, which recovers every shard directory
// independently (-checkpoint is incompatible: each shard owns its
// checkpointer). Open-loop load generation against the same sharded
// fleet lives in the companion command wfload:
//
//	wfrun -process travel -n 64 -shards 4 -parallel 2 -wal fleet/ -group-commit travel.fdl
//	wfrun -resume -shards 4 -wal fleet/ travel.fdl
//
// With -checkpoint DIR the -wal path becomes a segment directory: the
// log rotates into bounded segments and a background checkpointer folds
// sealed segments into crash-consistent checkpoints, so restart work is
// bounded by the checkpoint period instead of the history length.
// -resume recovers every instance from an existing log instead of
// starting new ones — seeded from the newest usable checkpoint when
// -checkpoint is given, by full replay otherwise:
//
//	wfrun -process travel -n 16 -wal segs/ -checkpoint segs/ -group-commit travel.fdl
//	wfrun -process travel -resume -wal segs/ -checkpoint segs/ travel.fdl
//
// With -archive DIR (requires -checkpoint, or -shards where each shard
// owns a checkpointer) sealed segments and checkpoints are copied
// asynchronously to a directory-backed archive store with verification,
// retries and a circuit breaker; local pruning waits for verified
// archived copies, so a degraded archive grows local retention instead
// of stalling the run. -resume -archive adds a fourth recovery rung
// that fetches missing or damaged checkpoints and sealed segments back
// from the store (CRC-verified), and the summary line names the rung
// that satisfied recovery:
//
//	wfrun -process travel -n 16 -wal segs/ -checkpoint segs/ -archive arch/ travel.fdl
//	wfrun -process travel -resume -wal segs/ -checkpoint segs/ -archive arch/ travel.fdl
//
// Flag misuse exits 2 (usage), runtime failures exit 1: -fsync,
// -crash-at, -group-commit, -resume and -checkpoint require -wal;
// -flush-ms and -batch require -group-commit; -crash-at is incompatible
// with -group-commit, with -n > 1, with -resume and with -checkpoint
// (crash injection is per-record and single-instance — the batch- and
// checkpoint-boundary soaks live in wfbench E8/E9).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/fdl"
	"repro/internal/fmtm"
	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/rm"
	"repro/internal/wal"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	process := flag.String("process", "", "process template to instantiate (default: the file's first process)")
	trace := flag.Bool("trace", true, "print the audit trail")
	walPath := flag.String("wal", "", "write the navigation log to this file (default: in-memory)")
	walFormat := flag.String("wal-format", "text", "record framing for new WAL files/segments: text or binary (requires -wal; existing files replay either way)")
	fsync := flag.Bool("fsync", false, "fsync the WAL after every record (requires -wal)")
	crashAt := flag.Int("crash-at", 0, "inject a crash after N WAL records, then repair and recover (requires -wal)")
	metrics := flag.Bool("metrics", false, "dump the metric registry (Prometheus text format) after the run")
	metricsAddr := flag.String("metrics-addr", "", "serve metrics over HTTP on this address while running (e.g. :9090)")
	spans := flag.Bool("spans", false, "print the instance's span tree derived from the audit trail")
	fleetN := flag.Int("n", 1, "fleet size: run N instances of the process and print an aggregate summary")
	shardsN := flag.Int("shards", 1, "engine shards: consistent-hash partition fleet instances across k shards, each with its own workers, admission queue and (with -wal) its own WAL under WAL/shard-NN/ (requires -n > 1 or -resume)")
	parallel := flag.Int("parallel", 1, "fleet workers: how many instances execute at once")
	maxQueue := flag.Int("max-queue", 0, "fleet admission queue depth beyond the -parallel workers (requires -n > 1)")
	shed := flag.Bool("shed", false, "reject (and count) fleet instances arriving while the admission queue is full instead of blocking the producer (requires -n > 1)")
	breaker := flag.Bool("breaker", false, "guard every program with a circuit breaker and pool retries in a shared retry budget; breaker states appear on /statusz")
	groupCommit := flag.Bool("group-commit", false, "batch WAL appends from concurrent instances into one fsync per flush (requires -wal)")
	flushMs := flag.Int("flush-ms", 0, "group-commit accumulation window in milliseconds (0 = commit pipelining only; requires -group-commit)")
	batch := flag.Int("batch", 64, "group-commit max records per batch (requires -group-commit)")
	resume := flag.Bool("resume", false, "recover every instance from the existing -wal log (and -checkpoint dir) instead of starting a new run")
	ckptDir := flag.String("checkpoint", "", "checkpoint directory: -wal becomes a segment directory, a background checkpointer bounds restart work, and -resume seeds recovery from the newest checkpoint (requires -wal)")
	archiveDir := flag.String("archive", "", "archive directory: sealed segments and checkpoints copy asynchronously to this directory-backed store, local pruning waits for verified archived copies, and -resume can fetch missing or damaged blobs back from it (requires -checkpoint or -shards)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the ops server (requires -metrics-addr)")
	sseBuffer := flag.Int("sse-buffer", 256, "per-client event queue depth for the /events SSE tail (requires -metrics-addr)")
	lingerMs := flag.Int("linger-ms", 0, "keep the ops HTTP surface serving this many milliseconds after the run completes (requires -metrics-addr)")
	flightPath := flag.String("flight-recorder", "", "dump the flight recorder's retained events as JSONL to this file at exit, success or failure")
	trailPath := flag.String("trail-export", "", "stream every bus event to this file as a history/v1 JSONL trail export (the whole run, flushed on every exit path — the input of wfquery agg/tail)")
	var aborts, abortNs multiFlag
	flag.Var(&aborts, "abort", "program that aborts on every attempt (repeatable)")
	flag.Var(&abortNs, "abort-n", "program that aborts the first k attempts, as name=k (repeatable)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wfrun [-process name] [-abort prog]... [-abort-n prog=k]... [-breaker] [-wal file [-fsync] [-crash-at n] [-group-commit [-flush-ms n] [-batch n]] [-checkpoint dir [-archive dir]] [-resume]] [-n fleet [-shards k] [-parallel p] [-max-queue n] [-shed]] [-metrics] [-metrics-addr :port [-pprof] [-sse-buffer n] [-linger-ms n]] [-flight-recorder file] [-trail-export file] [-spans] file.fdl\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	// Flag misuse is a usage error (exit 2), distinct from runtime
	// failures (exit 1): scripts can tell a bad invocation from a bad run.
	explicit := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	usageError := func(msg string) {
		fmt.Fprintln(os.Stderr, "wfrun: "+msg)
		flag.Usage()
		os.Exit(2)
	}
	switch {
	case *walPath == "" && (*fsync || *crashAt > 0):
		usageError("-fsync and -crash-at require -wal")
	case *walPath == "" && *groupCommit:
		usageError("-group-commit requires -wal")
	case *walPath == "" && explicit["wal-format"]:
		usageError("-wal-format requires -wal")
	case *walFormat != "text" && *walFormat != "binary":
		usageError("-wal-format must be text or binary")
	case !*groupCommit && (explicit["flush-ms"] || explicit["batch"]):
		usageError("-flush-ms and -batch require -group-commit")
	case *flushMs < 0 || *batch < 1:
		usageError("-flush-ms must be >= 0 and -batch >= 1")
	case *fleetN < 1 || *parallel < 1:
		usageError("-n and -parallel must be >= 1")
	case *crashAt > 0 && *groupCommit:
		usageError("-crash-at is incompatible with -group-commit (crash injection is per-record; see wfbench E8 for the batch-boundary soak)")
	case *crashAt > 0 && *fleetN > 1:
		usageError("-crash-at is incompatible with fleet mode (-n > 1)")
	case *resume && *walPath == "":
		usageError("-resume requires -wal")
	case *ckptDir != "" && *walPath == "":
		usageError("-checkpoint requires -wal")
	case *resume && *crashAt > 0:
		usageError("-resume is incompatible with -crash-at (resume recovers an existing log; -crash-at injects a fresh crash)")
	case *ckptDir != "" && *crashAt > 0:
		usageError("-checkpoint is incompatible with -crash-at (the checkpointed crash soak lives in wfbench E9)")
	case *metricsAddr == "" && (*pprofOn || explicit["sse-buffer"] || explicit["linger-ms"]):
		usageError("-pprof, -sse-buffer and -linger-ms require -metrics-addr")
	case *sseBuffer < 1 || *lingerMs < 0:
		usageError("-sse-buffer must be >= 1 and -linger-ms >= 0")
	case *fleetN <= 1 && (explicit["max-queue"] || *shed):
		usageError("-max-queue and -shed require fleet mode (-n > 1)")
	case *maxQueue < 0:
		usageError("-max-queue must be >= 0")
	case *shardsN < 1:
		usageError("-shards must be >= 1")
	case *shardsN > 1 && *fleetN <= 1 && !*resume:
		usageError("-shards requires fleet mode (-n > 1) or -resume")
	case *shardsN > 1 && *ckptDir != "":
		usageError("-checkpoint is incompatible with -shards (each shard owns its checkpointer inside its shard directory)")
	case *archiveDir != "" && *ckptDir == "" && *shardsN <= 1:
		usageError("-archive requires -checkpoint or -shards (the checkpointer owns the archiver's enqueue points)")
	case *archiveDir != "" && *walPath == "":
		usageError("-archive requires -wal")
	}

	// The flight recorder taps the bus whenever something will consume its
	// ring: a -flight-recorder dump at exit, or the ops server's /events
	// replay. startOps attaches it from the same tap that tracks WAL
	// staleness for /healthz.
	var flightRec *obs.Recorder
	if *flightPath != "" || *metricsAddr != "" {
		flightRec = obs.NewRecorder(obs.DefaultRecorderSize)
	}
	var ops *opsServer
	if *metricsAddr != "" {
		s, err := startOps(obs.Default, obs.DefaultBus, flightRec, *sseBuffer, *pprofOn, *metricsAddr)
		if err != nil {
			fatal(err)
		}
		ops = s
	} else if flightRec != nil {
		obs.DefaultBus.Attach(flightRec.Record)
	}
	// The trail export taps the bus synchronously for the run's whole
	// duration: unlike the flight recorder's ring it misses nothing, and
	// its Close is wired into every exit path below so a fatal() or a
	// forced second-signal exit still flushes a queryable prefix.
	var trailW *history.Writer
	if *trailPath != "" {
		w, err := history.NewWriter(*trailPath)
		if err != nil {
			fatal(err)
		}
		w.Attach(obs.DefaultBus)
		trailW = w
	}
	// Graceful shutdown: the first SIGINT/SIGTERM asks the run to drain —
	// fleet mode stops admitting new instances and lets the ones in flight
	// finish, after which the normal exit path stops the checkpointer,
	// closes the log and dumps the flight recorder; a closed stop channel
	// also cuts the -linger-ms window short. A second signal forces exit:
	// the flight recorder is dumped (the run's last evidence) and the
	// process leaves with the conventional 128+SIGINT code.
	stop := make(chan struct{})
	dumpFlight := func() {
		if flightRec != nil && *flightPath != "" {
			if err := flightRec.DumpFile(*flightPath); err != nil {
				fmt.Fprintf(os.Stderr, "wfrun: flight recorder: %v\n", err)
			}
		}
		if trailW != nil {
			// Idempotent: the normal return, fatal() and the forced-exit
			// signal path all funnel here; the first close flushes.
			if err := trailW.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "wfrun: trail export: %v\n", err)
			}
		}
	}
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "wfrun: signal received, draining (signal again to force exit)")
		close(stop)
		<-sigc
		fmt.Fprintln(os.Stderr, "wfrun: second signal, forcing exit")
		dumpFlight()
		os.Exit(130)
	}()
	shutdownOps = func() {
		dumpFlight()
		if *lingerMs > 0 {
			select {
			case <-time.After(time.Duration(*lingerMs) * time.Millisecond):
			case <-stop:
			}
		}
	}
	defer shutdownOps()

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	file, err := fdl.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	if err := file.Check(); err != nil {
		fatal(err)
	}
	if len(file.Processes) == 0 {
		fatal(fmt.Errorf("no processes in %s", flag.Arg(0)))
	}
	name := *process
	if name == "" {
		name = file.Processes[0].Name
	}

	// build assembles a fresh engine with freshly scripted resource
	// managers; recovery after -crash-at uses a second one, exactly as a
	// restarted workflow server would.
	build := func() (*engine.Engine, *rm.Recorder) {
		inj := rm.NewInjector()
		for _, a := range aborts {
			inj.AbortAlways(a)
		}
		for _, spec := range abortNs {
			parts := strings.SplitN(spec, "=", 2)
			if len(parts) != 2 {
				fatal(fmt.Errorf("-abort-n wants name=k, got %q", spec))
			}
			k, err := strconv.Atoi(parts[1])
			if err != nil {
				fatal(fmt.Errorf("-abort-n %q: %v", spec, err))
			}
			inj.AbortN(parts[0], k)
		}
		rec := &rm.Recorder{}
		var eopts []engine.Option
		if *breaker {
			// One breaker per program plus a shared retry budget: a failing
			// resource manager trips open and is probed instead of hammered,
			// and retry storms drain the budget before they melt the fleet.
			set := rm.NewBreakerSet(rm.BreakerConfig{}, nil, nil)
			eopts = append(eopts,
				engine.WithBreakerFactory(set.Factory()),
				engine.WithRetryBudget(engine.NewRetryBudget(64, 0)))
			ops.setBreakers(set.States) // nil-safe
		}
		e := engine.New(eopts...)
		ops.setEngine(e) // nil-safe; /statusz shows the freshest engine
		for _, prog := range file.Programs {
			if prog.Name == fmtm.CopyName {
				if err := fmtm.RegisterRuntime(e); err != nil {
					fatal(err)
				}
				continue
			}
			sub := rm.Subtransaction{Name: prog.Name}
			if err := e.RegisterProgram(prog.Name, rm.Program(sub, inj, rec)); err != nil {
				fatal(err)
			}
		}
		if err := fmtm.Install(e, file); err != nil {
			fatal(err)
		}
		return e, rec
	}

	if *resume {
		if *shardsN > 1 {
			resumeSharded(build, *walPath, *archiveDir, *metrics)
			return
		}
		resumeRun(build, *walPath, *ckptDir, *archiveDir, *trace, *spans, *metrics)
		return
	}

	recFormat := wal.FormatText
	if *walFormat == "binary" {
		recFormat = wal.FormatBinary
	}
	if *shardsN > 1 {
		// Sharded fleet mode: the fleet opens one WAL per shard under
		// WAL/shard-NN itself, so the single-log setup below is skipped.
		e, _ := build()
		runSharded(e, name, *shardsN, *fleetN, *parallel, *maxQueue, *shed,
			*walPath, *archiveDir, *groupCommit, *fsync, recFormat, *flushMs, *batch, stop, *metrics)
		return
	}

	var log wal.Log
	var flog *wal.FileLog
	var slog *wal.SegmentedLog
	var gclog *wal.GroupCommitLog
	var ckpt *engine.Checkpointer
	var arch *wal.Archiver
	if *walPath != "" {
		if *ckptDir != "" {
			// Checkpointed mode: -wal names a segment directory; a
			// background checkpointer folds sealed segments while the run
			// executes, so a later -resume replays only the tail.
			var sopts []wal.SegmentOption
			if *fsync {
				sopts = append(sopts, wal.SegmentFsync())
			}
			sopts = append(sopts, wal.SegmentFormat(recFormat))
			slog, err = wal.OpenSegmentedLog(*walPath, sopts...)
			if err != nil {
				fatal(err)
			}
			log = slog
			if *groupCommit {
				gclog = wal.NewGroupCommitSegmented(slog,
					wal.GroupWindow(time.Duration(*flushMs)*time.Millisecond),
					wal.GroupMaxBatch(*batch))
				log = gclog
			}
			ckopts := []engine.CheckpointerOption{
				engine.CheckpointDir(*ckptDir), engine.CheckpointEveryRecords(64),
			}
			if *archiveDir != "" {
				st, err := wal.NewDirStore(*archiveDir)
				if err != nil {
					fatal(err)
				}
				arch = wal.NewArchiver(st)
				arch.Start()
				ckopts = append(ckopts, engine.CheckpointArchive(arch))
			}
			ckpt = engine.NewCheckpointer(slog, ckopts...)
			ckpt.Start()
		} else {
			var opts []wal.FileOption
			if *fsync {
				opts = append(opts, wal.WithFsync())
			}
			opts = append(opts, wal.WithFormat(recFormat))
			flog, err = wal.OpenFileLog(*walPath, opts...)
			if err != nil {
				fatal(err)
			}
			log = flog
			if *groupCommit {
				gclog = wal.NewGroupCommitLog(flog,
					wal.GroupWindow(time.Duration(*flushMs)*time.Millisecond),
					wal.GroupMaxBatch(*batch))
				log = gclog
			}
			if *crashAt > 0 {
				log = wal.NewFaultLog(flog, *crashAt, false)
			}
		}
	}
	closeLog := func() error {
		// The final checkpoint pass runs before the log closes (it may
		// rotate the active segment); by now every append has returned, so
		// nothing is in flight.
		var err error
		if ckpt != nil {
			err = ckpt.Stop()
		}
		if arch != nil {
			// Best effort: give the queue a moment to flush so a later
			// -resume can fetch from the archive, but never block shutdown
			// on a degraded store — unarchived blobs stay local (pruning is
			// archive-gated) and re-enqueue on the next run.
			arch.Drain(2 * time.Second)
			arch.Stop()
		}
		if gclog != nil {
			if cerr := gclog.Close(); err == nil {
				err = cerr
			}
		} else if slog != nil {
			if cerr := slog.Close(); err == nil {
				err = cerr
			}
		} else if flog != nil {
			if cerr := flog.Close(); err == nil {
				err = cerr
			}
		}
		return err
	}

	e, rec := build()

	if *fleetN > 1 {
		res, err := e.RunFleet(engine.FleetOptions{
			Process: name, N: *fleetN, Parallel: *parallel, Log: log,
			MaxQueue: *maxQueue, Shed: *shed, Stop: stop,
		})
		if err != nil {
			fatal(err)
		}
		if err := closeLog(); err != nil {
			fatal(err)
		}
		secs := res.Elapsed.Seconds()
		fmt.Printf("fleet: %d instances of %s: finished=%d failed=%d shed=%d elapsed=%s (%.1f instances/sec)\n",
			res.Launched, name, res.Finished, res.Failed, res.Shed,
			res.Elapsed.Round(time.Millisecond), float64(res.Launched)/secs)
		if res.Stopped {
			fmt.Printf("fleet: drained after stop signal: %d of %d instances never admitted\n",
				*fleetN-res.Launched-res.Shed, *fleetN)
		}
		if *metrics {
			fmt.Println("-- metrics --")
			obs.WritePrometheus(os.Stdout, obs.Default)
		}
		if res.Failed > 0 {
			fatal(fmt.Errorf("%d of %d instances failed: %v", res.Failed, res.Launched, res.Err))
		}
		return
	}
	inst, err := e.CreateInstance(name, nil, log)
	if err != nil {
		fatal(err)
	}
	err = inst.Start()
	switch {
	case *crashAt > 0:
		if !errors.Is(err, wal.ErrCrash) {
			fatal(fmt.Errorf("expected injected crash after %d records, got: %v", *crashAt, err))
		}
		if err := flog.Close(); err != nil {
			fatal(err)
		}
		recs, dropped, err := wal.RepairFile(*walPath)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("crashed after %d records; repaired %s: %d records kept, %d bytes truncated\n",
			*crashAt, *walPath, len(recs), dropped)
		e2, rec2 := build()
		inst, err = engine.Recover(e2, recs, nil)
		if err != nil {
			fatal(err)
		}
		rec = rec2
	case err != nil:
		fatal(err)
	default:
		if err := closeLog(); err != nil {
			fatal(err)
		}
	}
	if *trace {
		for _, ev := range inst.Trail() {
			fmt.Println(ev)
		}
	}
	if *spans {
		fmt.Print(inst.Trace().Render())
	}
	fmt.Printf("instance %s of %s: finished=%v\n", inst.ID(), name, inst.Finished())
	if events := rec.Events(); len(events) > 0 {
		var parts []string
		for _, e := range events {
			parts = append(parts, e.String())
		}
		fmt.Printf("transactional history: %s\n", strings.Join(parts, " "))
	}
	fmt.Printf("output: %s\n", inst.Output())
	if *metrics {
		fmt.Println("-- metrics --")
		obs.WritePrometheus(os.Stdout, obs.Default)
	}
}

// resumeRun recovers every instance recorded in the log a previous
// (possibly crashed) wfrun left behind and resumes each to completion.
// With a checkpoint directory, recovery seeds live instances from the
// newest usable checkpoint and replays only the segment tail — the
// fallback ladder (previous checkpoint, archive fetch with -archive,
// then full replay) engages automatically when newer checkpoints are
// damaged, and the summary names the rung that satisfied recovery.
func resumeRun(build func() (*engine.Engine, *rm.Recorder), walPath, ckptDir, archiveDir string, trace, spans, metrics bool) {
	e, rec := build()
	var insts []*engine.Instance
	doneN := 0
	rung := wal.SourceFullReplay
	if ckptDir != "" {
		var st wal.Store
		if archiveDir != "" {
			s, err := wal.NewDirStore(archiveDir)
			if err != nil {
				fatal(err)
			}
			st = s
		}
		cp, src, err := wal.LoadCheckpointStore(ckptDir, st)
		if err != nil {
			fatal(err)
		}
		rung = src
		cover := 0
		if cp != nil {
			cover = cp.Cover
			doneN = len(cp.Done)
		}
		tail, dropped, err := wal.RepairSegmentsStore(walPath, cover, st)
		if err != nil {
			fatal(err)
		}
		if cp != nil {
			fmt.Printf("checkpoint seq %d covers segments <= %d: %d live records, %d instances already finished; replaying %d tail records (%d bytes truncated)\n",
				cp.Seq, cp.Cover, len(cp.Records), doneN, len(tail), dropped)
		} else {
			fmt.Printf("no usable checkpoint in %s: full replay of %d records (%d bytes truncated)\n",
				ckptDir, len(tail), dropped)
		}
		insts, err = engine.RecoverAllFromCheckpoint(e, cp, tail, nil)
		if err != nil {
			fatal(err)
		}
	} else {
		recs, dropped, err := wal.RepairFile(walPath)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("repaired %s: %d records kept, %d bytes truncated\n", walPath, len(recs), dropped)
		insts, err = engine.RecoverAll(e, recs, nil)
		if err != nil {
			fatal(err)
		}
	}
	finished, failed := 0, 0
	for _, inst := range insts {
		if inst.Finished() {
			finished++
		} else {
			failed++
		}
	}
	if len(insts) == 1 {
		inst := insts[0]
		if trace {
			for _, ev := range inst.Trail() {
				fmt.Println(ev)
			}
		}
		if spans {
			fmt.Print(inst.Trace().Render())
		}
		if events := rec.Events(); len(events) > 0 {
			var parts []string
			for _, e := range events {
				parts = append(parts, e.String())
			}
			fmt.Printf("transactional history: %s\n", strings.Join(parts, " "))
		}
		fmt.Printf("output: %s\n", inst.Output())
	}
	fmt.Printf("resumed %d instances (%d already finished in checkpoint): finished=%d failed=%d (recovery rung: %s)\n",
		len(insts), doneN, finished, failed, rung)
	if metrics {
		fmt.Println("-- metrics --")
		obs.WritePrometheus(os.Stdout, obs.Default)
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d resumed instances failed", failed))
	}
}

// shutdownOps runs on every exit path — the normal return and fatal() —
// dumping the flight recorder and holding the ops surface through the
// -linger-ms window so a monitor attached late still sees the run. main
// replaces the no-op once the recorder and flags are known.
var shutdownOps = func() {}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wfrun: %v\n", err)
	shutdownOps()
	os.Exit(1)
}
