package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/wal"
)

// buildWfrun compiles the command once per test binary into a temp dir.
func buildWfrun(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "wfrun")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestUsageErrorsExitTwo pins the CLI contract: flag misuse is a usage
// error (exit 2, message on stderr), not a runtime failure (exit 1).
// Before PR 2, -fsync/-crash-at without -wal exited 1, so scripts could
// not tell a mistyped invocation from a genuinely failed run.
func TestUsageErrorsExitTwo(t *testing.T) {
	bin := buildWfrun(t)
	cases := []struct {
		name   string
		args   []string
		stderr string
	}{
		{"fsync without wal", []string{"-fsync", "x.fdl"}, "-fsync and -crash-at require -wal"},
		{"crash-at without wal", []string{"-crash-at", "3", "x.fdl"}, "-fsync and -crash-at require -wal"},
		{"no file argument", []string{}, "usage: wfrun"},
		{"group-commit without wal", []string{"-group-commit", "x.fdl"}, "-group-commit requires -wal"},
		{"flush-ms without group-commit", []string{"-wal", "x.wal", "-flush-ms", "2", "x.fdl"}, "-flush-ms and -batch require -group-commit"},
		{"batch without group-commit", []string{"-wal", "x.wal", "-batch", "8", "x.fdl"}, "-flush-ms and -batch require -group-commit"},
		{"crash-at with group-commit", []string{"-wal", "x.wal", "-group-commit", "-crash-at", "3", "x.fdl"}, "-crash-at is incompatible with -group-commit"},
		{"crash-at with fleet", []string{"-wal", "x.wal", "-crash-at", "3", "-n", "4", "x.fdl"}, "-crash-at is incompatible with fleet mode"},
		{"zero fleet size", []string{"-n", "0", "x.fdl"}, "-n and -parallel must be >= 1"},
		{"zero parallel", []string{"-n", "4", "-parallel", "0", "x.fdl"}, "-n and -parallel must be >= 1"},
		{"bad batch", []string{"-wal", "x.wal", "-group-commit", "-batch", "0", "x.fdl"}, "-flush-ms must be >= 0 and -batch >= 1"},
		{"resume without wal", []string{"-resume", "x.fdl"}, "-resume requires -wal"},
		{"checkpoint without wal", []string{"-checkpoint", "ck", "x.fdl"}, "-checkpoint requires -wal"},
		{"resume with crash-at", []string{"-wal", "x.wal", "-resume", "-crash-at", "3", "x.fdl"}, "-resume is incompatible with -crash-at"},
		{"checkpoint with crash-at", []string{"-wal", "x.wal", "-checkpoint", "ck", "-crash-at", "3", "x.fdl"}, "-checkpoint is incompatible with -crash-at"},
		{"pprof without metrics-addr", []string{"-pprof", "x.fdl"}, "-pprof, -sse-buffer and -linger-ms require -metrics-addr"},
		{"sse-buffer without metrics-addr", []string{"-sse-buffer", "8", "x.fdl"}, "-pprof, -sse-buffer and -linger-ms require -metrics-addr"},
		{"linger-ms without metrics-addr", []string{"-linger-ms", "100", "x.fdl"}, "-pprof, -sse-buffer and -linger-ms require -metrics-addr"},
		{"zero sse-buffer", []string{"-metrics-addr", "127.0.0.1:0", "-sse-buffer", "0", "x.fdl"}, "-sse-buffer must be >= 1 and -linger-ms >= 0"},
		{"max-queue without fleet", []string{"-max-queue", "4", "x.fdl"}, "-max-queue and -shed require fleet mode (-n > 1)"},
		{"shed without fleet", []string{"-shed", "x.fdl"}, "-max-queue and -shed require fleet mode (-n > 1)"},
		{"negative max-queue", []string{"-n", "4", "-max-queue", "-1", "x.fdl"}, "-max-queue must be >= 0"},
		{"zero shards", []string{"-n", "4", "-shards", "0", "x.fdl"}, "-shards must be >= 1"},
		{"shards without fleet", []string{"-shards", "4", "x.fdl"}, "-shards requires fleet mode (-n > 1) or -resume"},
		{"shards with checkpoint", []string{"-n", "4", "-shards", "2", "-wal", "w", "-checkpoint", "ck", "x.fdl"}, "-checkpoint is incompatible with -shards"},
		{"archive without checkpoint or shards", []string{"-wal", "w", "-archive", "a", "x.fdl"}, "-archive requires -checkpoint or -shards"},
		{"archive without wal", []string{"-n", "4", "-shards", "2", "-archive", "a", "x.fdl"}, "-archive requires -wal"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// The flag check precedes any file access, so x.fdl need not exist.
			cmd := exec.Command(bin, c.args...)
			var stderr strings.Builder
			cmd.Stderr = &stderr
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("expected exit error, got %v", err)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Errorf("exit code = %d, want 2\nstderr: %s", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), c.stderr) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), c.stderr)
			}
		})
	}
}

// TestRunWithMetricsAndSpans exercises the observability flags end to
// end on a real FDL file: the run must print the Prometheus dump and the
// span tree alongside the audit trail.
func TestRunWithMetricsAndSpans(t *testing.T) {
	bin := buildWfrun(t)
	fdl := filepath.Join(t.TempDir(), "p.fdl")
	src := `PROGRAM 'step'
END 'step'

PROCESS 'demo' ( 'Default', 'Default' )
  PROGRAM_ACTIVITY 'A' ( 'Default', 'Default' )
    PROGRAM 'step'
  END 'A'
  PROGRAM_ACTIVITY 'B' ( 'Default', 'Default' )
    PROGRAM 'step'
  END 'B'
  CONTROL FROM 'A' TO 'B'
END 'demo'
`
	if err := os.WriteFile(fdl, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-metrics", "-spans", fdl)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"finished=true",
		"-- metrics --",
		"engine_program_invocations 2",
		"engine_navigation_steps 2",
		"demo [instance]",
		"A [activity]",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q\n%s", want, s)
		}
	}
}

// TestFleetWithGroupCommit runs a fleet over a shared group-commit WAL
// end to end: the aggregate summary must report every instance finished,
// the metrics dump must show the fleet and group-commit instruments, and
// the shared log must be strictly readable afterwards with every
// instance's records present.
func TestFleetWithGroupCommit(t *testing.T) {
	bin := buildWfrun(t)
	dir := t.TempDir()
	fdl := filepath.Join(dir, "p.fdl")
	src := `PROGRAM 'step'
END 'step'

PROCESS 'demo' ( 'Default', 'Default' )
  PROGRAM_ACTIVITY 'A' ( 'Default', 'Default' )
    PROGRAM 'step'
  END 'A'
  PROGRAM_ACTIVITY 'B' ( 'Default', 'Default' )
    PROGRAM 'step'
  END 'B'
  CONTROL FROM 'A' TO 'B'
END 'demo'
`
	if err := os.WriteFile(fdl, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "fleet.wal")
	cmd := exec.Command(bin, "-wal", walPath, "-group-commit", "-n", "16", "-parallel", "4", "-metrics", fdl)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"fleet: 16 instances of demo: finished=16 failed=0",
		"wal_group_batches",
		"wal_group_records 96", // 16 instances x (created + 2x(started+activity) + done)
		"engine_fleet_active_max",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q\n%s", want, s)
		}
	}
	records, err := wal.ReadFile(walPath)
	if err != nil {
		t.Fatalf("reading shared log: %v", err)
	}
	perInst := make(map[string]int)
	for _, r := range records {
		perInst[r.Instance]++
	}
	if len(perInst) != 16 {
		t.Fatalf("log holds %d instances, want 16", len(perInst))
	}
	for id, n := range perInst {
		if n != 6 {
			t.Errorf("instance %s has %d records, want 6", id, n)
		}
	}
}

// TestFleetShedAndBreakerFlags runs a fleet with the overload-control
// flags at a queue depth that can never fill (-max-queue >= -n) and with
// -breaker on: the summary must report the shed count (zero here — the
// deterministic shedding behavior itself is pinned by the engine's
// scheduler tests and the B12 table) and the metrics dump must show the
// breaker instruments the flag wires in.
func TestFleetShedAndBreakerFlags(t *testing.T) {
	bin := buildWfrun(t)
	fdl := demoFDL(t, t.TempDir())
	out, err := exec.Command(bin, "-n", "16", "-parallel", "4",
		"-max-queue", "32", "-shed", "-breaker", "-metrics", fdl).CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"fleet: 16 instances of demo: finished=16 failed=0 shed=0",
		"engine_breaker_open 0",
		"engine_retry_budget",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q\n%s", want, s)
		}
	}
}

// TestSignalCutsLingerShort pins the graceful-shutdown contract: a run
// parked in its -linger-ms window exits promptly and cleanly on SIGINT
// instead of serving out the full window, and the flight recorder dump
// survives. The dump file doubles as the readiness signal — it is
// written immediately before the linger wait begins.
func TestSignalCutsLingerShort(t *testing.T) {
	bin := buildWfrun(t)
	dir := t.TempDir()
	fdl := demoFDL(t, dir)
	dump := filepath.Join(dir, "flight.jsonl")
	cmd := exec.Command(bin, "-metrics-addr", "127.0.0.1:0",
		"-linger-ms", "60000", "-flight-recorder", dump, fdl)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(dump); err == nil {
			break
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatalf("flight dump never appeared; stderr:\n%s", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("exit after SIGINT: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(15 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("run kept lingering after SIGINT")
	}
	if !strings.Contains(stderr.String(), "signal received, draining") {
		t.Errorf("drain announcement missing from stderr:\n%s", stderr.String())
	}
	if data, err := os.ReadFile(dump); err != nil || len(data) == 0 {
		t.Errorf("flight dump unreadable or empty: %v", err)
	}
}

// demoFDL writes the two-step demo process used by the resume tests.
func demoFDL(t *testing.T, dir string) string {
	t.Helper()
	fdl := filepath.Join(dir, "p.fdl")
	src := `PROGRAM 'step'
END 'step'

PROCESS 'demo' ( 'Default', 'Default' )
  PROGRAM_ACTIVITY 'A' ( 'Default', 'Default' )
    PROGRAM 'step'
  END 'A'
  PROGRAM_ACTIVITY 'B' ( 'Default', 'Default' )
    PROGRAM 'step'
  END 'B'
  CONTROL FROM 'A' TO 'B'
END 'demo'
`
	if err := os.WriteFile(fdl, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return fdl
}

// TestShardedFleetRunAndResume runs a fleet across shards with a
// durable group-commit WAL per shard, then resumes from the fleet root:
// the run summary must report per-shard placement summing to the fleet
// size, the root must hold one shard-NN directory per shard, and the
// sharded resume must recover every instance finished.
func TestShardedFleetRunAndResume(t *testing.T) {
	bin := buildWfrun(t)
	dir := t.TempDir()
	fdl := demoFDL(t, dir)
	root := filepath.Join(dir, "fleet")

	out, err := exec.Command(bin, "-wal", root, "-group-commit", "-n", "24",
		"-shards", "3", "-parallel", "2", fdl).CombinedOutput()
	if err != nil {
		t.Fatalf("sharded run: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "fleet: 24 instances of demo across 3 shards: finished=24 failed=0") {
		t.Fatalf("sharded summary missing:\n%s", s)
	}
	placed := 0
	for i := 0; i < 3; i++ {
		tag := "shard-0" + string(rune('0'+i)) + ": placed="
		idx := strings.Index(s, tag)
		if idx < 0 {
			t.Fatalf("per-shard line for shard %d missing:\n%s", i, s)
		}
		var n, fin, fail int
		if _, err := fmt.Sscanf(s[idx:], "shard-0"+string(rune('0'+i))+": placed=%d finished=%d failed=%d", &n, &fin, &fail); err != nil {
			t.Fatalf("parsing shard line: %v\n%s", err, s)
		}
		placed += n
	}
	if placed != 24 {
		t.Errorf("per-shard placements sum to %d, want 24", placed)
	}

	out, err = exec.Command(bin, "-resume", "-shards", "3", "-wal", root, fdl).CombinedOutput()
	if err != nil {
		t.Fatalf("sharded resume: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "recovered 24 instances from 3 shard directories: finished=24 failed=0") {
		t.Errorf("sharded resume summary missing:\n%s", out)
	}
}

// TestResumeAfterCrash crashes a run with -crash-at (which leaves the
// repaired record prefix on disk — the in-process recovery writes a
// fresh in-memory log) and then resumes it with -resume: the second
// invocation must recover the instance from the flat WAL file and run it
// to completion.
func TestResumeAfterCrash(t *testing.T) {
	bin := buildWfrun(t)
	dir := t.TempDir()
	fdl := demoFDL(t, dir)
	walPath := filepath.Join(dir, "run.wal")

	out, err := exec.Command(bin, "-wal", walPath, "-crash-at", "3", fdl).CombinedOutput()
	if err != nil {
		t.Fatalf("crashed run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "crashed after 3 records") {
		t.Fatalf("first run did not crash:\n%s", out)
	}

	out, err = exec.Command(bin, "-resume", "-wal", walPath, fdl).CombinedOutput()
	if err != nil {
		t.Fatalf("resume: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"repaired " + walPath + ": 3 records kept",
		"resumed 1 instances (0 already finished in checkpoint): finished=1 failed=0",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("resume output missing %q\n%s", want, s)
		}
	}
}

// TestResumeWithCheckpoint runs a fleet in checkpointed mode (-wal as a
// segment directory plus -checkpoint and -group-commit) and then resumes
// from the same directories: the resume must load a checkpoint, account
// for every instance (recovered or checkpoint-finished), and exit 0.
func TestResumeWithCheckpoint(t *testing.T) {
	bin := buildWfrun(t)
	dir := t.TempDir()
	fdl := demoFDL(t, dir)
	segDir := filepath.Join(dir, "segs")
	ckDir := filepath.Join(dir, "ckpts")

	out, err := exec.Command(bin, "-wal", segDir, "-checkpoint", ckDir,
		"-group-commit", "-n", "24", "-parallel", "4", fdl).CombinedOutput()
	if err != nil {
		t.Fatalf("checkpointed fleet run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "fleet: 24 instances of demo: finished=24 failed=0") {
		t.Fatalf("fleet summary missing:\n%s", out)
	}
	// 24 instances x 6 records with the checkpointer's 64-record rotation
	// trigger guarantees at least one sealed segment and one checkpoint.
	cps, err := wal.ListCheckpoints(ckDir)
	if err != nil || len(cps) == 0 {
		t.Fatalf("no checkpoint written: %v (%v)", cps, err)
	}

	out, err = exec.Command(bin, "-resume", "-wal", segDir, "-checkpoint", ckDir, fdl).CombinedOutput()
	if err != nil {
		t.Fatalf("resume: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "checkpoint seq ") {
		t.Errorf("resume did not report the checkpoint it used:\n%s", s)
	}
	if !strings.Contains(s, "failed=0") {
		t.Errorf("resume reported failures:\n%s", s)
	}
	if !strings.Contains(s, "resumed ") {
		t.Errorf("resume summary missing:\n%s", s)
	}
	if !strings.Contains(s, "(recovery rung: "+wal.SourceNewestCheckpoint+")") {
		t.Errorf("resume summary does not name the recovery rung:\n%s", s)
	}
}

// TestResumeFromArchiveAfterLocalCheckpointLoss runs a checkpointed
// fleet with -archive, destroys every local checkpoint, and resumes
// with -archive: the ladder must climb past the empty local tiers to
// the archive rung, fetch the newest archived checkpoint, account for
// every instance, and name the rung in the summary line.
func TestResumeFromArchiveAfterLocalCheckpointLoss(t *testing.T) {
	bin := buildWfrun(t)
	dir := t.TempDir()
	fdl := demoFDL(t, dir)
	segDir := filepath.Join(dir, "segs")
	ckDir := filepath.Join(dir, "ckpts")
	archDir := filepath.Join(dir, "arch")

	out, err := exec.Command(bin, "-wal", segDir, "-checkpoint", ckDir,
		"-archive", archDir, "-group-commit", "-n", "24", "-parallel", "4", fdl).CombinedOutput()
	if err != nil {
		t.Fatalf("archived fleet run: %v\n%s", err, out)
	}
	// The run's shutdown drains the archiver, so the newest checkpoint
	// must have an archived copy we can destroy the local tier against.
	ents, err := os.ReadDir(archDir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("archive holds nothing: %v (%v)", ents, err)
	}
	cps, err := wal.ListCheckpoints(ckDir)
	if err != nil || len(cps) == 0 {
		t.Fatalf("no local checkpoint written: %v (%v)", cps, err)
	}
	for _, ci := range cps {
		if err := os.Remove(ci.Path); err != nil {
			t.Fatal(err)
		}
	}

	out, err = exec.Command(bin, "-resume", "-wal", segDir, "-checkpoint", ckDir,
		"-archive", archDir, fdl).CombinedOutput()
	if err != nil {
		t.Fatalf("resume from archive: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"checkpoint seq ",
		"failed=0",
		"(recovery rung: " + wal.SourceArchiveCheckpoint + ")",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("resume output missing %q\n%s", want, s)
		}
	}
}

// TestShardedArchiveRunAndResume runs a sharded fleet with -archive
// (which switches every shard to a checkpointed WAL with its own
// archiver), burns the local checkpoints in every shard directory, and
// resumes with -archive: each shard must recover through the archive
// rung and the summary must tally the rungs.
func TestShardedArchiveRunAndResume(t *testing.T) {
	bin := buildWfrun(t)
	dir := t.TempDir()
	fdl := demoFDL(t, dir)
	root := filepath.Join(dir, "fleet")
	archDir := filepath.Join(dir, "arch")

	// 64 instances x 6 records: even a badly skewed hash split leaves both
	// shards past the 64-record checkpoint trigger, so each shard is
	// guaranteed a local checkpoint (and an archived copy) to destroy.
	out, err := exec.Command(bin, "-wal", root, "-archive", archDir, "-group-commit",
		"-n", "64", "-shards", "2", "-parallel", "2", fdl).CombinedOutput()
	if err != nil {
		t.Fatalf("sharded archive run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "fleet: 64 instances of demo across 2 shards: finished=64 failed=0") {
		t.Fatalf("sharded summary missing:\n%s", out)
	}
	for i := 0; i < 2; i++ {
		shard := fmt.Sprintf("shard-%02d", i)
		cps, err := wal.ListCheckpoints(filepath.Join(root, shard))
		if err != nil || len(cps) == 0 {
			t.Fatalf("%s has no local checkpoint: %v (%v)", shard, cps, err)
		}
		for _, ci := range cps {
			if err := os.Remove(ci.Path); err != nil {
				t.Fatal(err)
			}
		}
		if ents, err := os.ReadDir(filepath.Join(archDir, shard)); err != nil || len(ents) == 0 {
			t.Fatalf("%s archive holds nothing: %v (%v)", shard, ents, err)
		}
	}

	out, err = exec.Command(bin, "-resume", "-shards", "2", "-wal", root,
		"-archive", archDir, fdl).CombinedOutput()
	if err != nil {
		t.Fatalf("sharded resume from archive: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"from 2 shard directories",
		"failed=0",
		"recovery rungs: " + wal.SourceArchiveCheckpoint + "=2",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("sharded resume output missing %q\n%s", want, s)
		}
	}
}
