package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildWfrun compiles the command once per test binary into a temp dir.
func buildWfrun(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "wfrun")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestUsageErrorsExitTwo pins the CLI contract: flag misuse is a usage
// error (exit 2, message on stderr), not a runtime failure (exit 1).
// Before PR 2, -fsync/-crash-at without -wal exited 1, so scripts could
// not tell a mistyped invocation from a genuinely failed run.
func TestUsageErrorsExitTwo(t *testing.T) {
	bin := buildWfrun(t)
	cases := []struct {
		name   string
		args   []string
		stderr string
	}{
		{"fsync without wal", []string{"-fsync", "x.fdl"}, "-fsync and -crash-at require -wal"},
		{"crash-at without wal", []string{"-crash-at", "3", "x.fdl"}, "-fsync and -crash-at require -wal"},
		{"no file argument", []string{}, "usage: wfrun"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// The flag check precedes any file access, so x.fdl need not exist.
			cmd := exec.Command(bin, c.args...)
			var stderr strings.Builder
			cmd.Stderr = &stderr
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("expected exit error, got %v", err)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Errorf("exit code = %d, want 2\nstderr: %s", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), c.stderr) {
				t.Errorf("stderr %q does not mention %q", stderr.String(), c.stderr)
			}
		})
	}
}

// TestRunWithMetricsAndSpans exercises the observability flags end to
// end on a real FDL file: the run must print the Prometheus dump and the
// span tree alongside the audit trail.
func TestRunWithMetricsAndSpans(t *testing.T) {
	bin := buildWfrun(t)
	fdl := filepath.Join(t.TempDir(), "p.fdl")
	src := `PROGRAM 'step'
END 'step'

PROCESS 'demo' ( 'Default', 'Default' )
  PROGRAM_ACTIVITY 'A' ( 'Default', 'Default' )
    PROGRAM 'step'
  END 'A'
  PROGRAM_ACTIVITY 'B' ( 'Default', 'Default' )
    PROGRAM 'step'
  END 'B'
  CONTROL FROM 'A' TO 'B'
END 'demo'
`
	if err := os.WriteFile(fdl, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-metrics", "-spans", fdl)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"finished=true",
		"-- metrics --",
		"engine_program_invocations 2",
		"engine_navigation_steps 2",
		"demo [instance]",
		"A [activity]",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q\n%s", want, s)
		}
	}
}
