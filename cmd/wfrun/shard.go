package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/rm"
	"repro/internal/wal"
)

// runSharded executes fleet mode across multiple engine shards:
// instances are consistent-hash partitioned on instance ID, each shard
// runs its own workers and bounded admission queue, and with -wal the
// path becomes the fleet root directory holding one shard-NN
// subdirectory per shard, each with its own (optionally group-commit)
// segmented WAL. The summary reports per-shard placement so hash skew
// and rebalancing are visible from the command line. With -archive
// each shard also runs a checkpointer and an archiver copying sealed
// segments and checkpoints to ARCHIVE/shard-NN; local pruning waits
// for verified archived copies, so a degraded archive only grows local
// retention and never stalls the fleet.
func runSharded(e *engine.Engine, process string, shards, fleetN, parallel, maxQueue int,
	shed bool, walPath, archiveDir string, groupCommit, fsyncOn bool, format wal.Format,
	flushMs, batch int, stop <-chan struct{}, metrics bool) {
	cfg := engine.FleetConfig{
		Shards: shards, Dir: walPath, Parallel: parallel,
		MaxQueue: maxQueue, HotQueue: parallel + maxQueue/2, Shed: shed,
		GroupCommit: groupCommit, Fsync: fsyncOn, Format: format, Stop: stop,
	}
	if archiveDir != "" {
		// The fleet validates that an archive tier rides on a checkpointer,
		// so -archive switches sharded mode to checkpointed WALs too.
		cfg.ArchiveDir = archiveDir
		cfg.CheckpointEveryRecords = 64
	}
	if groupCommit {
		cfg.GroupOpts = func(int) []wal.GroupOption {
			return []wal.GroupOption{
				wal.GroupWindow(time.Duration(flushMs) * time.Millisecond),
				wal.GroupMaxBatch(batch),
			}
		}
	}
	f, err := engine.NewFleet(e, cfg)
	if err != nil {
		fatal(err)
	}
	res, err := f.Run(process, fleetN, nil)
	if err != nil {
		fatal(err)
	}
	if archiveDir != "" {
		// Best effort, outside the timed window (res.Elapsed is already
		// captured): flush the archive queues so a later -resume -archive
		// can fetch, but never block shutdown on a degraded store.
		for _, sh := range f.Shards() {
			if a := sh.Archiver(); a != nil {
				a.Drain(2 * time.Second)
			}
		}
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	st := f.Stats()
	secs := res.Elapsed.Seconds()
	fmt.Printf("fleet: %d instances of %s across %d shards: finished=%d failed=%d shed=%d rebalanced=%d elapsed=%s (%.1f instances/sec)\n",
		res.Launched, process, shards, res.Finished, res.Failed, res.Shed,
		st.Rebalanced, res.Elapsed.Round(time.Millisecond), float64(res.Launched)/secs)
	for _, s := range st.Shards {
		fmt.Printf("  %s: placed=%d finished=%d failed=%d\n",
			engine.ShardDirName(s.ID), s.Placed, s.Finished, s.Failed)
	}
	if res.Stopped {
		fmt.Printf("fleet: drained after stop signal: %d of %d instances never admitted\n",
			fleetN-res.Launched-res.Shed, fleetN)
	}
	if metrics {
		fmt.Println("-- metrics --")
		obs.WritePrometheus(os.Stdout, obs.Default)
	}
	if res.Failed > 0 {
		fatal(fmt.Errorf("%d of %d instances failed: %v", res.Failed, res.Launched, res.Err))
	}
}

// resumeSharded recovers every instance a sharded run left under the
// fleet root directory: each shard-NN subdirectory is recovered
// independently (newest usable checkpoint, repaired segment tail, then
// replay; with -archive, missing or damaged blobs are fetched back
// from ARCHIVE/shard-NN), and the concatenation is reported like a
// single-log resume, with the recovery rung each shard climbed to.
func resumeSharded(build func() (*engine.Engine, *rm.Recorder), root, archiveDir string, metrics bool) {
	e, _ := build()
	dirs, err := engine.ShardDirs(root)
	if err != nil {
		fatal(err)
	}
	var stores func(shardDir string) wal.Store
	if archiveDir != "" {
		stores = func(shardDir string) wal.Store {
			st, err := wal.NewDirStore(filepath.Join(archiveDir, shardDir))
			if err != nil {
				fatal(err)
			}
			return st
		}
	}
	insts, rungs, err := engine.RecoverFleetStore(e, root, stores, nil)
	if err != nil {
		fatal(err)
	}
	finished, failed := 0, 0
	for _, inst := range insts {
		if inst.Finished() {
			finished++
		} else {
			failed++
		}
	}
	// Tally the ladder rung each shard recovered through so archive
	// fetches are visible in the summary line.
	byRung := map[string]int{}
	for _, r := range rungs {
		byRung[r]++
	}
	var parts []string
	for _, r := range []string{
		wal.SourceNewestCheckpoint, wal.SourcePreviousCheckpoint,
		wal.SourceArchiveCheckpoint, wal.SourceFullReplay,
	} {
		if n := byRung[r]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", r, n))
		}
	}
	fmt.Printf("recovered %d instances from %d shard directories: finished=%d failed=%d (recovery rungs: %s)\n",
		len(insts), len(dirs), finished, failed, strings.Join(parts, " "))
	if metrics {
		fmt.Println("-- metrics --")
		obs.WritePrometheus(os.Stdout, obs.Default)
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d recovered instances failed", failed))
	}
}
