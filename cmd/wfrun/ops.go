package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/obs"
)

// opsServer is the -metrics-addr HTTP surface: the live operational view
// of a running wfrun. It serves
//
//	/metrics  — the obs registry (Prometheus text, ?format=json)
//	/healthz  — liveness plus WAL/checkpointer staleness
//	/statusz  — per-instance state, fleet gauges, latency quantiles
//	/events   — Server-Sent-Events tail of the engine/WAL event bus,
//	            prefixed with the flight recorder's retained history
//	/debug/pprof/* — the runtime profiler, only with -pprof
//
// The zero-cost contract holds here too: the server observes through one
// synchronous bus tap (recorder insert + two atomic stamps) and bounded
// SSE subscriptions, so a slow or absent monitor never stalls the run.
type opsServer struct {
	reg       *obs.Registry
	bus       *obs.Bus
	rec       *obs.Recorder
	sseBuffer int

	// eng is set once the engine exists (build happens after the server
	// starts listening); /statusz serves registry-only data before then.
	eng atomic.Pointer[engine.Engine]

	// breakerStates, when set, snapshots the run's circuit-breaker states
	// by program name for /statusz (the -breaker flag).
	breakerStates atomic.Pointer[func() map[string]string]

	// walLast / ckptLast hold the obs.Now() stamp of the most recent
	// durability event (wal.fsync|wal.flush and wal.checkpoint), 0 when
	// never seen — the staleness inputs of /healthz.
	walLast  atomic.Int64
	ckptLast atomic.Int64
}

// startOps binds addr, starts serving the ops surface in the background
// and returns the server. The bound address is announced on stderr
// ("ops listening on ...") so callers using :0 can find the port. The
// recorder, when non-nil, is fed from the same tap that tracks
// staleness.
func startOps(reg *obs.Registry, bus *obs.Bus, rec *obs.Recorder, sseBuffer int, pprofOn bool, addr string) (*opsServer, error) {
	s := &opsServer{reg: reg, bus: bus, rec: rec, sseBuffer: sseBuffer}
	bus.Attach(func(ev obs.Event) {
		if rec != nil {
			rec.Record(ev)
		}
		switch ev.Kind {
		case obs.EvWalFsync, obs.EvWalFlush:
			s.walLast.Store(ev.At)
		case obs.EvWalCheckpoint:
			s.ckptLast.Store(ev.At)
		}
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ops server: %w", err)
	}
	fmt.Fprintf(os.Stderr, "wfrun: ops listening on %s\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, s.mux(pprofOn)); err != nil {
			fmt.Fprintf(os.Stderr, "wfrun: ops server: %v\n", err)
		}
	}()
	return s, nil
}

// setEngine publishes the engine to /statusz; called for every engine
// the run builds (the recovery path builds a second one).
func (s *opsServer) setEngine(e *engine.Engine) {
	if s != nil {
		s.eng.Store(e)
	}
}

// setBreakers publishes a breaker-state snapshot function to /statusz;
// called when -breaker wires a BreakerSet into the engine.
func (s *opsServer) setBreakers(states func() map[string]string) {
	if s != nil {
		s.breakerStates.Store(&states)
	}
}

func (s *opsServer) mux(pprofOn bool) *http.ServeMux {
	m := http.NewServeMux()
	m.Handle("/metrics", obs.Handler(s.reg))
	// PR 2 served the registry at every path; keep "/" as the fallback so
	// existing scrape configs stay valid.
	m.Handle("/", obs.Handler(s.reg))
	m.HandleFunc("/healthz", s.handleHealthz)
	m.HandleFunc("/statusz", s.handleStatusz)
	m.HandleFunc("/events", s.handleEvents)
	if pprofOn {
		m.HandleFunc("/debug/pprof/", pprof.Index)
		m.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		m.HandleFunc("/debug/pprof/profile", pprof.Profile)
		m.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		m.HandleFunc("/debug/pprof/trace", pprof.Trace)
	} else {
		// Explicit 404: without it the "/" metrics fallback would answer
		// pprof probes with a 200 of Prometheus text.
		m.HandleFunc("/debug/pprof/", http.NotFound)
	}
	return m
}

func (s *opsServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	idle := func(last int64) int64 {
		if last == 0 {
			return -1 // never seen: healthy for configs without that stage
		}
		return obs.Now() - last
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(obs.Healthz{
		OK:               true,
		UptimeNs:         obs.Now(),
		WalIdleNs:        idle(s.walLast.Load()),
		CheckpointIdleNs: idle(s.ckptLast.Load()),
	})
}

func (s *opsServer) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	st := obs.StatusOf(s.reg, s.bus)
	if states := s.breakerStates.Load(); states != nil {
		st.Breakers = (*states)()
	}
	if e := s.eng.Load(); e != nil {
		infos := e.Instances()
		st.States = make(map[string]int, 4)
		st.Instances = make([]obs.StatusInstance, 0, len(infos))
		for _, in := range infos {
			st.Instances = append(st.Instances, obs.StatusInstance{
				ID: in.ID, Process: in.Process, Status: in.Status,
				Cause: in.Cause, PendingWork: in.PendingWork,
			})
			st.States[in.Status]++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

// handleEvents streams the bus as Server-Sent Events: one "data: {json}"
// frame per event. The flight recorder's retained history is replayed
// first so a subscriber arriving mid-run (or during the -linger-ms
// window after it) still sees the run's event sequence in order; the
// handoff to the live subscription may duplicate an event that lands in
// both views but never drops one. The subscription queue is bounded
// (-sse-buffer); a client slower than the publish rate loses events to
// the bus drop counter rather than stalling the engine.
func (s *opsServer) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	send := func(ev obs.Event) bool {
		b, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		_, err = fmt.Fprintf(w, "data: %s\n\n", b)
		return err == nil
	}
	sub := s.bus.Subscribe(s.sseBuffer)
	defer s.bus.Unsubscribe(sub)
	if s.rec != nil {
		for _, ev := range s.rec.Events() {
			if !send(ev) {
				return
			}
		}
	}
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-sub.Events():
			if !send(ev) {
				return
			}
			fl.Flush()
		}
	}
}
