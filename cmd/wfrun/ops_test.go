package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// startOpsRun launches bin with args (which must include
// -metrics-addr 127.0.0.1:0), waits for the "ops listening on" stderr
// announcement and returns the bound address. Stderr keeps draining in
// the background so the child never blocks on a full pipe.
func startOpsRun(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "wfrun: ops listening on "); ok {
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(10 * time.Second):
		t.Fatal("wfrun never announced its ops address")
		return nil, ""
	}
}

// readSSE tails base/events, decoding each "data:" frame, until stopWhen
// is satisfied or the deadline cancels the request. On timeout it
// returns whatever arrived so the caller's assertions produce a useful
// failure.
func readSSE(t *testing.T, base string, stopWhen func([]obs.Event) bool, max time.Duration) []obs.Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), max)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("/events content type = %q", ct)
	}
	var evs []obs.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal([]byte(line[len("data: "):]), &ev); err != nil {
			t.Fatalf("bad SSE frame %q: %v", line, err)
		}
		evs = append(evs, ev)
		if stopWhen(evs) {
			break
		}
	}
	return evs
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("%s: %v", url, err)
	}
}

// buildWftop compiles the fleet monitor once per test into a temp dir.
func buildWftop(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "wftop")
	cmd := exec.Command("go", "build", "-o", bin, "../wftop")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build wftop: %v\n%s", err, out)
	}
	return bin
}

// TestOpsSurfaceEndToEnd is the PR's live-observability acceptance test:
// a real `wfrun -n 8 -parallel 4` fleet run serves /events, /healthz,
// /statusz and pprof while executing (the -linger-ms window keeps the
// surface up after the fleet completes so the assertions are not racing
// it), the SSE tail shows every instance's lifecycle in order plus WAL
// group-commit flushes, and wftop renders the fleet from /statusz.
func TestOpsSurfaceEndToEnd(t *testing.T) {
	bin := buildWfrun(t)
	dir := t.TempDir()
	fdl := demoFDL(t, dir)
	dump := filepath.Join(dir, "flight.jsonl")
	_, addr := startOpsRun(t, bin,
		"-wal", filepath.Join(dir, "fleet.wal"), "-group-commit",
		"-n", "8", "-parallel", "4",
		"-metrics-addr", "127.0.0.1:0", "-pprof",
		"-linger-ms", "15000", "-flight-recorder", dump, fdl)
	base := "http://" + addr

	// The /events tail: the flight-recorder replay prefix means a client
	// attaching at any point — even after the fleet finished — sees the
	// full ordered history before the live stream takes over.
	gotAll := func(evs []obs.Event) bool {
		n := 0
		for _, ev := range evs {
			if ev.Kind == obs.EvInstanceFinished {
				n++
			}
		}
		return n >= 8
	}
	evs := readSSE(t, base, gotAll, 15*time.Second)
	firstIdx := func(kind, inst string) int {
		for i, ev := range evs {
			if ev.Kind == kind && ev.Instance == inst {
				return i
			}
		}
		return -1
	}
	insts := map[string]bool{}
	flushes := 0
	for _, ev := range evs {
		if ev.Kind == obs.EvInstanceCreated {
			insts[ev.Instance] = true
		}
		if ev.Kind == obs.EvWalFlush {
			flushes++
			if ev.N < 1 || ev.DurNs <= 0 {
				t.Errorf("wal.flush without batch attribution: %+v", ev)
			}
		}
	}
	if len(insts) != 8 {
		t.Fatalf("instance.created for %d instances, want 8 (%d events)", len(insts), len(evs))
	}
	for id := range insts {
		c := firstIdx(obs.EvInstanceCreated, id)
		s := firstIdx(obs.EvInstanceStarted, id)
		f := firstIdx(obs.EvInstanceFinished, id)
		if c < 0 || s < 0 || f < 0 || c > s || s > f {
			t.Errorf("instance %s lifecycle out of order: created=%d started=%d finished=%d", id, c, s, f)
		}
	}
	if flushes == 0 {
		t.Error("no wal.flush events on the SSE tail of a group-commit run")
	}

	var hz obs.Healthz
	getJSON(t, base+"/healthz", &hz)
	if !hz.OK || hz.UptimeNs <= 0 {
		t.Fatalf("healthz = %+v", hz)
	}
	if hz.WalIdleNs < 0 {
		t.Errorf("wal staleness unreported after a group-commit run: %+v", hz)
	}

	var st obs.Status
	getJSON(t, base+"/statusz", &st)
	if st.States["finished"] != 8 || len(st.Instances) != 8 {
		t.Fatalf("statusz states=%v instances=%d, want 8 finished", st.States, len(st.Instances))
	}
	for _, in := range st.Instances {
		if in.Process != "demo" || in.Status != "finished" {
			t.Errorf("statusz instance = %+v", in)
		}
	}
	if q, ok := st.Latencies["engine.program.ns"]; !ok || q.Count != 16 || q.P50 > q.P99 {
		t.Errorf("statusz latencies[engine.program.ns] = %+v ok=%v", q, ok)
	}
	if st.Bus.Published == 0 {
		t.Error("statusz bus block empty")
	}

	resp, err := http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with -pprof: %s", resp.Status)
	}

	// wftop renders the lingering fleet and exits on -until-done.
	wftop := buildWftop(t)
	out, err := exec.Command(wftop, "-addr", addr, "-interval", "50ms",
		"-until-done", "-timeout", "10s").CombinedOutput()
	if err != nil {
		t.Fatalf("wftop: %v\n%s", err, out)
	}
	for _, want := range []string{
		"wftop  " + addr, "8 instances", "finished=8",
		"LATENCY", "engine.program.ns", "INSTANCE", "demo",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("wftop output missing %q\n%s", want, out)
		}
	}

	// The flight dump is written when the run's main exits (before the
	// linger sleep); poll briefly for it, then check it mirrors the tail.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if fi, err := os.Stat(dump); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flight recorder dump never appeared")
		}
		time.Sleep(20 * time.Millisecond)
	}
	data, err := os.ReadFile(dump)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad dump line %q: %v", line, err)
		}
		kinds[ev.Kind]++
	}
	if kinds[obs.EvInstanceFinished] != 8 || kinds[obs.EvWalFlush] == 0 {
		t.Errorf("flight dump kinds = %v", kinds)
	}
}

// TestOpsPprofGatedBehindFlag pins that the profiler is opt-in: without
// -pprof the /debug/pprof/ namespace 404s while the rest of the ops
// surface serves normally.
func TestOpsPprofGatedBehindFlag(t *testing.T) {
	bin := buildWfrun(t)
	dir := t.TempDir()
	fdl := demoFDL(t, dir)
	_, addr := startOpsRun(t, bin, "-metrics-addr", "127.0.0.1:0", "-linger-ms", "10000", fdl)
	base := "http://" + addr

	resp, err := http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without -pprof: %s, want 404", resp.Status)
	}
	var hz obs.Healthz
	getJSON(t, base+"/healthz", &hz)
	if !hz.OK {
		t.Fatalf("healthz = %+v", hz)
	}
	// No WAL in this run: staleness must stay -1 ("never"), not 0.
	if hz.WalIdleNs != -1 || hz.CheckpointIdleNs != -1 {
		t.Errorf("healthz staleness for WAL-less run = %+v, want -1", hz)
	}
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "engine_program_invocations") {
		t.Errorf("/metrics missing engine instruments:\n%s", body)
	}
}

// TestFlightRecorderFlagStandsAlone runs with -flight-recorder but no
// ops server: the dump must still be written at process exit.
func TestFlightRecorderFlagStandsAlone(t *testing.T) {
	bin := buildWfrun(t)
	dir := t.TempDir()
	fdl := demoFDL(t, dir)
	dump := filepath.Join(dir, "flight.jsonl")
	out, err := exec.Command(bin, "-flight-recorder", dump, fdl).CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	data, err := os.ReadFile(dump)
	if err != nil {
		t.Fatalf("dump not written: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	var last obs.Event
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Kind != obs.EvInstanceFinished {
		t.Errorf("dump's last event = %+v, want instance.finished", last)
	}
}
