package exotica_test

import (
	"strings"
	"testing"

	exotica "repro"
	"repro/internal/rm"
)

const facadeSpec = `
SAGA 'order'
  STEP 'reserve' COMPENSATION 'unreserve'
  STEP 'charge'  COMPENSATION 'refund'
END 'order'

SAGA 'etl'
  STEP 'extract' COMPENSATION 'undo_extract'
  STEP 'load'    COMPENSATION 'undo_load' AFTER 'extract'
END 'etl'

FLEXIBLE 'pay'
  SUB 'card' PIVOT
  SUB 'invoice' RETRIABLE
  PATH 'card'
  PATH 'invoice'
END 'pay'
`

func TestFacadeCompileAndRun(t *testing.T) {
	c, err := exotica.Compile(facadeSpec)
	if err != nil {
		t.Fatal(err)
	}
	procs := c.Processes()
	if len(procs) != 3 {
		t.Fatalf("processes: %v", procs)
	}
	if !strings.Contains(c.FDL(), "PROCESS 'order'") {
		t.Fatal("FDL missing order process")
	}

	// Saga aborts at charge: reserve must be compensated.
	inj := rm.NewInjector()
	inj.AbortAlways("charge")
	events, err := c.Run("order", inj)
	if err != nil {
		t.Fatal(err)
	}
	var hist []string
	for _, e := range events {
		hist = append(hist, e.String())
	}
	want := "reserve:commit charge:abort unreserve:commit"
	if got := strings.Join(hist, " "); got != want {
		t.Fatalf("history = %s, want %s", got, want)
	}

	// Flexible transaction: the pivot fails, the retriable alternative
	// commits.
	inj2 := rm.NewInjector()
	inj2.AbortAlways("card")
	events2, err := c.Run("pay", inj2)
	if err != nil {
		t.Fatal(err)
	}
	if len(events2) != 2 || events2[1].String() != "invoice:commit" {
		t.Fatalf("pay history: %v", events2)
	}

	// Unknown process and invalid specs are rejected.
	if _, err := c.Run("ghost", nil); err == nil {
		t.Fatal("unknown process accepted")
	}
	if _, err := exotica.Compile("SAGA 'x'"); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestFacadeGeneralSaga(t *testing.T) {
	c, err := exotica.Compile(facadeSpec)
	if err != nil {
		t.Fatal(err)
	}
	inj := rm.NewInjector()
	inj.AbortAlways("load")
	events, err := c.Run("etl", inj)
	if err != nil {
		t.Fatal(err)
	}
	var hist []string
	for _, e := range events {
		hist = append(hist, e.String())
	}
	want := "extract:commit load:abort undo_extract:commit"
	if got := strings.Join(hist, " "); got != want {
		t.Fatalf("history = %s, want %s", got, want)
	}
}

func TestFacadeSimulate(t *testing.T) {
	c, err := exotica.Compile(facadeSpec)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := c.SimulateSaga("order", map[string]float64{"charge": 1}, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sres.CommitRate != 0 || sres.MeanCompensations != 1 {
		t.Fatalf("saga sim: %+v", sres)
	}
	fres, err := c.SimulateFlexible("pay", map[string]float64{"card": 0.5}, 2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fres.AbortRate != 0 { // the retriable invoice path guarantees commit
		t.Fatalf("flexible sim: %+v", fres)
	}
	if fres.PathRate["card"] < 0.4 || fres.PathRate["card"] > 0.6 {
		t.Fatalf("card rate: %+v", fres.PathRate)
	}
	if _, err := c.SimulateSaga("ghost", nil, 1, 1); err == nil {
		t.Fatal("unknown saga accepted")
	}
	if _, err := c.SimulateFlexible("ghost", nil, 1, 1); err == nil {
		t.Fatal("unknown flexible accepted")
	}
}
