// Travel saga: the paper's §4.1 scenario end to end. A travel booking saga
// (flight, hotel, car) is specified in the FMTM language, compiled through
// the full Figure 5 pipeline into a workflow process, and executed against
// three real local databases (txdb). The car booking is scripted to abort,
// so the Figure 2 compensation block cancels the hotel and the flight in
// reverse order — leaving all three databases clean.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/engine"
	"repro/internal/fmtm"
	"repro/internal/rm"
	"repro/internal/txdb"
)

const spec = `
SAGA 'travel'
  STEP 'book_flight' COMPENSATION 'cancel_flight'
  STEP 'book_hotel'  COMPENSATION 'cancel_hotel'
  STEP 'book_car'    COMPENSATION 'cancel_car'
END 'travel'
`

func main() {
	// Stage 1+2: the Exotica/FMTM pre-processor (Figure 5).
	res, err := fmtm.Pipeline(spec)
	must(err)
	fmt.Printf("pipeline: compiled %d saga into %d process template(s)\n",
		len(res.Specs.Sagas), len(res.File.Processes))
	fmt.Println("generated FDL (excerpt):")
	for i, line := range strings.Split(res.FDL, "\n") {
		if i >= 12 {
			fmt.Println("  ...")
			break
		}
		fmt.Println(" ", line)
	}

	// Stage 3: bind the subtransactions to three independent local
	// databases — the airline's, the hotel chain's and the rental agency's.
	mb := txdb.NewMultibase("airline", "hotel", "rental")
	sagaSpec := res.Specs.Sagas[0]
	binding := map[string]rm.Subtransaction{
		"book_flight":   booking("book_flight", mb.Store("airline"), "LH454", true),
		"book_hotel":    booking("book_hotel", mb.Store("hotel"), "room-1207", true),
		"book_car":      booking("book_car", mb.Store("rental"), "compact", true),
		"cancel_flight": booking("cancel_flight", mb.Store("airline"), "LH454", false),
		"cancel_hotel":  booking("cancel_hotel", mb.Store("hotel"), "room-1207", false),
		"cancel_car":    booking("cancel_car", mb.Store("rental"), "compact", false),
	}

	// The rental agency rejects the booking: the saga must compensate.
	inj := rm.NewInjector()
	inj.AbortAlways("book_car")
	rec := &rm.Recorder{}

	e := engine.New()
	must(fmtm.RegisterRuntime(e))
	must(fmtm.RegisterSaga(e, sagaSpec, binding, inj, rec))
	must(fmtm.Install(e, res.File))

	inst, err := e.CreateInstance("travel", nil, nil)
	must(err)
	must(inst.Start())

	fmt.Println("\ntransactional history:")
	for _, ev := range rec.Events() {
		fmt.Println(" ", ev)
	}
	fmt.Printf("\nprocess output: %s\n", inst.Output())
	fmt.Println("database state after compensation:")
	for _, name := range []string{"airline", "hotel", "rental"} {
		fmt.Printf("  %-8s: %d booking(s)\n", name, mb.Store(name).Len())
	}
	if mb.Store("airline").Len()+mb.Store("hotel").Len()+mb.Store("rental").Len() != 0 {
		log.Fatal("compensation left residue!")
	}
	fmt.Println("\nall bookings rolled back — the saga guarantee held.")
}

// booking returns a subtransaction that inserts (or deletes) a booking row
// in the store. The name must match the saga step name: it keys both the
// failure injector and the history recorder.
func booking(name string, store *txdb.Store, item string, insert bool) rm.Subtransaction {
	return rm.Subtransaction{Name: name, Store: store, Work: func(tx *txdb.Tx) error {
		if insert {
			return tx.Put(item, "booked")
		}
		return tx.Delete(item)
	}}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
