// Quickstart: define a three-activity workflow process in Go, run it, and
// inspect the audit trail and data flow — the minimal tour of the engine's
// §3.2 semantics (control connectors, transition conditions, containers).
package main

import (
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/model"
)

func main() {
	e := engine.New()

	// Programs are ordinary Go code registered under a name; activities
	// invoke them and read/write typed data containers.
	must(e.RegisterProgram("fetch_order", engine.ProgramFunc(func(inv *engine.Invocation) error {
		id, _ := inv.In.Get("order_id")
		inv.Out.MustSet("order_id", id)
		inv.Out.MustSet("total", expr.Float(99.5))
		inv.Out.SetRC(0)
		return nil
	})))
	must(e.RegisterProgram("charge", engine.ProgramFunc(func(inv *engine.Invocation) error {
		total, _ := inv.In.Get("total")
		fmt.Printf("  [charge] charging %.2f for order %v\n",
			total.AsFloat(), inv.In.MustGet("order_id"))
		inv.Out.SetRC(0) // commit
		return nil
	})))
	must(e.RegisterProgram("notify", engine.ProgramFunc(func(inv *engine.Invocation) error {
		fmt.Println("  [notify] order confirmed")
		inv.Out.SetRC(0)
		return nil
	})))

	// The process template: fetch -> charge -> notify, with data flowing
	// from the process input through the activities.
	p := model.NewProcess("CheckoutDemo")
	must(p.Types.Register(&model.StructType{Name: "Order", Members: []model.Member{
		{Name: "order_id", Basic: model.Long},
		{Name: "total", Basic: model.Float},
	}}))
	p.InputType = "Order"
	p.OutputType = "Order"
	p.Activities = []*model.Activity{
		{Name: "fetch", Kind: model.KindProgram, Program: "fetch_order", InputType: "Order", OutputType: "Order"},
		{Name: "charge", Kind: model.KindProgram, Program: "charge", InputType: "Order"},
		{Name: "notify", Kind: model.KindProgram, Program: "notify"},
	}
	p.Control = []*model.ControlConnector{
		{From: "fetch", To: "charge", Condition: expr.MustParse("RC = 0")},
		{From: "charge", To: "notify", Condition: expr.MustParse("RC = 0")},
	}
	p.Data = []*model.DataConnector{
		{From: model.ScopeRef, To: "fetch", Maps: []model.DataMap{{FromPath: "order_id", ToPath: "order_id"}}},
		{From: "fetch", To: "charge", Maps: []model.DataMap{
			{FromPath: "order_id", ToPath: "order_id"}, {FromPath: "total", ToPath: "total"},
		}},
		{From: "fetch", To: model.ScopeRef, Maps: []model.DataMap{
			{FromPath: "order_id", ToPath: "order_id"}, {FromPath: "total", ToPath: "total"},
		}},
	}
	must(e.RegisterProcess(p))

	inst, err := e.CreateInstance("CheckoutDemo", map[string]expr.Value{"order_id": expr.Int(42)}, nil)
	must(err)
	fmt.Println("running CheckoutDemo:")
	must(inst.Start())

	fmt.Println("\naudit trail:")
	for _, ev := range inst.Trail() {
		fmt.Println(" ", ev)
	}
	fmt.Printf("\nfinished=%v output=%s\n", inst.Finished(), inst.Output())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
