// Organization example: the §3.3 workflow features that no advanced
// transaction model offers — roles, staff resolution, per-person worklists
// where the same activity appears on several lists until one person
// selects it, and deadline notifications escalated to a manager.
//
// The scenario is a loan approval: a clerk prepares the file (either clerk
// may pick the item up), a senior officer approves amounts over the limit,
// and unattended approvals are escalated after a deadline.
package main

import (
	"fmt"
	"log"

	"repro/internal/account"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/model"
	"repro/internal/org"
)

func main() {
	// The organization: a manager, two clerks, one senior officer.
	dir := org.NewDirectory()
	must(dir.AddPerson(org.Person{Name: "maria", Roles: []string{"manager", "officer"}}))
	must(dir.AddPerson(org.Person{Name: "alice", Roles: []string{"clerk"}, Manager: "maria"}))
	must(dir.AddPerson(org.Person{Name: "bob", Roles: []string{"clerk"}, Manager: "maria"}))

	now := int64(0) // a controllable clock, in seconds
	e := engine.New(engine.WithOrganization(dir), engine.WithClock(func() int64 { return now }))

	must(e.RegisterProgram("prepare_file", engine.ProgramFunc(func(inv *engine.Invocation) error {
		amount, _ := inv.In.Get("amount")
		inv.Out.MustSet("amount", amount)
		inv.Out.SetRC(0)
		return nil
	})))
	must(e.RegisterProgram("approve", engine.ProgramFunc(func(inv *engine.Invocation) error {
		fmt.Println("  [approve] loan approved by an officer")
		inv.Out.SetRC(0)
		return nil
	})))
	must(e.RegisterProgram("auto_approve", engine.ProgramFunc(func(inv *engine.Invocation) error {
		fmt.Println("  [auto] small loan auto-approved")
		inv.Out.SetRC(0)
		return nil
	})))

	p := model.NewProcess("LoanApproval")
	must(p.Types.Register(&model.StructType{Name: "Loan", Members: []model.Member{
		{Name: "amount", Basic: model.Long},
	}}))
	p.InputType = "Loan"
	p.Activities = []*model.Activity{
		{
			Name: "prepare", Kind: model.KindProgram, Program: "prepare_file",
			InputType: "Loan", OutputType: "Loan",
			Start: model.StartManual, Staff: model.Staff{Role: "clerk"},
		},
		{
			// Large loans need a human officer; unattended items escalate
			// to the manager after 600 seconds.
			Name: "approve", Kind: model.KindProgram, Program: "approve",
			InputType: "Loan",
			Start:     model.StartManual, Staff: model.Staff{Role: "officer"},
			NotifySeconds: 600, NotifyRole: "manager",
		},
		{
			Name: "auto", Kind: model.KindProgram, Program: "auto_approve",
			InputType: "Loan",
		},
	}
	p.Control = []*model.ControlConnector{
		{From: "prepare", To: "approve", Condition: expr.MustParse("RC = 0 AND amount > 10000")},
		{From: "prepare", To: "auto", Condition: expr.MustParse("RC = 0 AND amount <= 10000")},
	}
	p.Data = []*model.DataConnector{
		{From: model.ScopeRef, To: "prepare", Maps: []model.DataMap{{FromPath: "amount", ToPath: "amount"}}},
		{From: "prepare", To: "approve", Maps: []model.DataMap{{FromPath: "amount", ToPath: "amount"}}},
		{From: "prepare", To: "auto", Maps: []model.DataMap{{FromPath: "amount", ToPath: "amount"}}},
	}
	must(e.RegisterProcess(p))

	inst, err := e.CreateInstance("LoanApproval", map[string]expr.Value{"amount": expr.Int(50000)}, nil)
	must(err)
	must(inst.Start())

	// The prepare step is on both clerks' worklists.
	fmt.Printf("alice's worklist: %d item(s); bob's worklist: %d item(s)\n",
		len(e.Worklists().List("alice")), len(e.Worklists().List("bob")))

	// Bob grabs it first; it vanishes from alice's list (§3.3 load
	// balancing).
	item := e.Worklists().List("bob")[0]
	must(inst.SelectWork("bob", item.ID))
	fmt.Printf("after bob selects: alice's worklist: %d item(s)\n", len(e.Worklists().List("alice")))

	// The approval sits unattended past its deadline: the manager is
	// notified.
	now = 700
	for _, n := range e.Worklists().CheckDeadlines(now) {
		fmt.Printf("escalation: activity %q waited %ds; notified %v\n",
			n.Item.Activity, now-n.Item.ReadyAt, n.Notified)
	}

	// Maria (an officer) finally approves.
	item = e.Worklists().List("maria")[0]
	must(inst.SelectWork("maria", item.ID))

	fmt.Printf("\nfinished=%v\n", inst.Finished())
	fmt.Println("audit trail:")
	for _, ev := range inst.Trail() {
		fmt.Println(" ", ev)
	}

	// §3.3 user intervention: a second loan where the approval is forced
	// through by a supervisor without anyone executing the activity.
	fmt.Println("\nsecond loan: approval forced by supervisor (ForceFinish)")
	inst2, err := e.CreateInstance("LoanApproval", map[string]expr.Value{"amount": expr.Int(90000)}, nil)
	must(err)
	must(inst2.Start())
	item2 := e.Worklists().List("alice")[0]
	must(inst2.SelectWork("alice", item2.ID)) // alice prepares the file
	must(inst2.ForceFinish("approve", 0))     // supervisor forces approval
	fmt.Printf("finished=%v (no officer ran the approve program)\n", inst2.Finished())

	// §3.3 monitoring and accounting: the engine's instance monitor and the
	// accounting report derived from the timestamped audit trail.
	fmt.Println("\ninstance monitor:")
	for _, info := range e.Instances() {
		fmt.Printf("  %-8s %-14s %-9s pending=%d\n", info.ID, info.Process, info.Status, info.PendingWork)
	}
	fmt.Println("\naccounting report for the first loan:")
	fmt.Print(account.Summarize(inst))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
