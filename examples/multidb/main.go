// Multidatabase flexible transaction: the paper's Figure 3 example (§4.2)
// against three independent local databases. The funds-transfer scenario:
// withdraw from a checking account, then try the preferred investment
// route (bonds then stocks then settlement); if the settlement fails,
// unwind the bond and stock purchases and fall back to a plain savings
// deposit that is retried until the bank accepts it — the execution paths
// p1 > p2 > p3 of the paper.
//
// Every subtransaction runs as a real ACID transaction on its local txdb
// store; compensations undo committed writes; the workflow encoding
// (Figure 4) produced by Exotica/FMTM drives the whole thing.
package main

import (
	"fmt"
	"log"

	"repro/internal/atm/flexible"
	"repro/internal/engine"
	"repro/internal/fmtm"
	"repro/internal/rm"
	"repro/internal/txdb"
)

func main() {
	mb := txdb.NewMultibase("bank", "broker", "clearing")

	spec := &flexible.Spec{
		Name: "transfer",
		Subs: []flexible.SubSpec{
			{Name: "withdraw", Compensatable: true, Compensation: "redeposit"},
			{Name: "open_position"}, // pivot: the broker account is opened for good
			{Name: "savings_deposit", Retriable: true},
			{Name: "allocate"}, // pivot: funds allocated at the broker
			{Name: "buy_bonds", Compensatable: true, Compensation: "sell_bonds"},
			{Name: "buy_stocks", Compensatable: true, Compensation: "sell_stocks"},
			{Name: "clearing_deposit", Retriable: true},
			{Name: "settle"}, // pivot: the settlement house accepts
		},
		Paths: [][]string{
			{"withdraw", "open_position", "allocate", "buy_bonds", "buy_stocks", "settle"},
			{"withdraw", "open_position", "allocate", "clearing_deposit"},
			{"withdraw", "open_position", "savings_deposit"},
		},
	}

	binding := flexible.Binding{
		"withdraw":         put("withdraw", mb.Store("bank"), "checking", "-1000"),
		"redeposit":        del("redeposit", mb.Store("bank"), "checking"),
		"open_position":    put("open_position", mb.Store("broker"), "position", "open"),
		"savings_deposit":  put("savings_deposit", mb.Store("bank"), "savings", "+1000"),
		"allocate":         put("allocate", mb.Store("broker"), "allocation", "1000"),
		"buy_bonds":        put("buy_bonds", mb.Store("broker"), "bonds", "600"),
		"sell_bonds":       del("sell_bonds", mb.Store("broker"), "bonds"),
		"buy_stocks":       put("buy_stocks", mb.Store("broker"), "stocks", "400"),
		"sell_stocks":      del("sell_stocks", mb.Store("broker"), "stocks"),
		"clearing_deposit": put("clearing_deposit", mb.Store("clearing"), "deposit", "1000"),
		"settle":           put("settle", mb.Store("clearing"), "settled", "yes"),
	}

	scenarios := []struct {
		title  string
		script func(*rm.Injector)
	}{
		{"p1: everything commits", func(*rm.Injector) {}},
		{"p2: settlement fails -> unwind stocks+bonds, clearing deposit", func(i *rm.Injector) {
			i.AbortAlways("settle")
		}},
		{"p3: allocation fails -> savings deposit (retried twice)", func(i *rm.Injector) {
			i.AbortAlways("allocate")
			i.AbortN("savings_deposit", 2)
		}},
		{"clean abort: broker rejects the position -> undo the withdrawal", func(i *rm.Injector) {
			i.AbortAlways("open_position")
		}},
	}

	for _, sc := range scenarios {
		fmt.Printf("== %s\n", sc.title)
		resetStores(mb)
		inj := rm.NewInjector()
		sc.script(inj)
		rec := &rm.Recorder{}

		e := engine.New()
		must(fmtm.RegisterRuntime(e))
		must(fmtm.RegisterFlexible(e, spec, binding, inj, rec))
		p, err := fmtm.TranslateFlexible(spec)
		must(err)
		must(e.RegisterProcess(p))

		inst, err := e.CreateInstance("transfer", nil, nil)
		must(err)
		must(inst.Start())

		fmt.Print("   history: ")
		for i, ev := range rec.Events() {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Print(ev)
		}
		fmt.Println()
		result := inst.Output().MustGet("Result").AsInt()
		switch result {
		case 0:
			fmt.Println("   outcome: committed")
		default:
			fmt.Println("   outcome: aborted (all effects undone)")
		}
		for _, name := range []string{"bank", "broker", "clearing"} {
			fmt.Printf("   %-8s: %d row(s)\n", name, mb.Store(name).Len())
		}
		fmt.Println()
	}
}

func put(name string, s *txdb.Store, key, val string) rm.Subtransaction {
	return rm.Subtransaction{Name: name, Store: s, Work: func(tx *txdb.Tx) error {
		return tx.Put(key, val)
	}}
}

func del(name string, s *txdb.Store, key string) rm.Subtransaction {
	return rm.Subtransaction{Name: name, Store: s, Work: func(tx *txdb.Tx) error {
		return tx.Delete(key)
	}}
}

func resetStores(mb *txdb.Multibase) {
	for _, n := range mb.Names() {
		s := mb.Store(n)
		_ = s.Do(func(tx *txdb.Tx) error {
			for _, k := range []string{"checking", "savings", "position", "allocation", "bonds", "stocks", "deposit", "settled"} {
				if err := tx.Delete(k); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
