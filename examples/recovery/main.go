// Forward recovery: the §3.3 guarantee, live. A travel saga (compiled by
// Exotica/FMTM) runs with a write-ahead log; the workflow server "crashes"
// in the middle of navigation. A fresh engine — simulating the restarted
// server — recovers the instance from the surviving log records and
// resumes exactly where execution stopped: completed subtransactions are
// not re-executed (their logged outputs replay), while an activity that
// had started but never logged a completion is re-run from the beginning,
// the paper's caveat about activities that are not failure atomic.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/fmtm"
	"repro/internal/rm"
	"repro/internal/wal"
)

const spec = `
SAGA 'travel'
  STEP 'book_flight' COMPENSATION 'cancel_flight'
  STEP 'book_hotel'  COMPENSATION 'cancel_hotel'
  STEP 'book_car'    COMPENSATION 'cancel_car'
END 'travel'
`

func newServer(rec *rm.Recorder, attempts *rm.Injector) (*engine.Engine, string) {
	res, err := fmtm.Pipeline(spec)
	must(err)
	e := engine.New()
	must(fmtm.RegisterRuntime(e))
	sg := res.Specs.Sagas[0]
	must(fmtm.RegisterSaga(e, sg, fmtm.PureSagaBinding(sg), attempts, rec))
	must(fmtm.Install(e, res.File))
	return e, sg.Name
}

func main() {
	// First server: crash while the third booking is in flight: its completion never reaches the log.
	fmt.Println("== server 1: running the travel saga, crash injected mid-flight")
	rec1 := &rm.Recorder{}
	e1, proc := newServer(rec1, rm.NewInjector())
	crashLog := &wal.MemLog{CrashAfter: 6}
	inst1, err := e1.CreateInstance(proc, nil, crashLog)
	must(err)
	err = inst1.Start()
	if !errors.Is(err, wal.ErrCrash) {
		log.Fatalf("expected the injected crash, got %v", err)
	}
	fmt.Printf("   crashed after %d log records; instance finished=%v\n", crashLog.Len(), inst1.Finished())
	fmt.Printf("   work done before the crash: %v\n", rec1.Events())

	// The surviving log (in production this is the file read back from
	// disk; wal.OpenFileLog/wal.ReadFile provide exactly that).
	records := crashLog.Records()
	compacted := wal.Compact(records)
	fmt.Printf("   surviving log: %d records (%d after compaction)\n", len(records), len(compacted))

	// Second server: recover and resume.
	fmt.Println("\n== server 2: restarted, recovering from the log")
	rec2 := &rm.Recorder{}
	e2, _ := newServer(rec2, rm.NewInjector())
	inst2, err := engine.Recover(e2, compacted, nil)
	must(err)
	fmt.Printf("   recovered instance finished=%v\n", inst2.Finished())
	fmt.Printf("   subtransactions actually re-executed after restart: %v\n", rec2.Events())
	fmt.Printf("   final output: %s\n", inst2.Output())

	fmt.Println("\n== combined history across the crash")
	var all []string
	for _, ev := range append(rec1.Events(), rec2.Events()...) {
		all = append(all, ev.String())
	}
	fmt.Printf("   %v\n", all)
	fmt.Println("   flight and hotel were not re-run (their completions were logged);")
	fmt.Println("   book_car ran twice: it had started but never logged completion, so")
	fmt.Println("   recovery rescheduled it from the beginning — the paper's caveat for")
	fmt.Println("   activities that are not failure atomic.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
